// NTB transport: the data-sharing machinery of the paper's §III.
//
// Per host there are:
//   * one TX channel per NTB adapter (a ring host has two, left/right; a
//     torus host four): each serializes the link's ScratchPad bank — a
//     frame holds the channel from ScratchPad write until the receiver's
//     ACK doorbell ("Release Interrupt" in Fig. 5) frees it;
//   * an RX service process: the interrupt-service thread of Fig. 5. It
//     reads the ScratchPad header, copies staged payloads out of the bypass
//     buffer, acknowledges the frame, reassembles chunked messages, and
//     either delivers locally or queues the message for forwarding;
//   * a TX service process: drains the forward queue, moving messages hop
//     by hop through the pre-mapped bypass window in
//     TimingParams::bypass_chunk_bytes chunks, one ScratchPad handshake per
//     chunk. (Service context cannot reprogram translation windows, so it
//     cannot use the fast segmented path the application context uses —
//     this asymmetry is what makes Get and multi-hop forwarding an order of
//     magnitude slower than neighbour Put, as in the paper's Fig. 9.)
//
// Routing: every hop decision consults the fabric's precomputed
// fabric::RoutingTable (RuntimeOptions::routing selects the mode). On the
// paper's ring with the default kRightOnly mode the table reproduces the
// legacy always-right circulation bit-for-bit; kShortest and
// kDimensionOrder generalize the same transport to chordal rings, 2-D tori
// and full meshes without touching the data path.
//
// Application-context operations:
//   * put(): neighbour targets get the direct path — data DMA'd segment by
//     segment straight into the destination symmetric heap through the LUT
//     window (segment_setup per segment), then one kDirectPut notify frame.
//     Non-neighbour targets get the whole message staged into the next
//     hop's bypass buffer (same segmented cost) and forwarded from there by
//     the service threads; the call returns at local completion either way
//     (one-sided semantics).
//   * get(): sends a kGetRequest frame toward the source; the source's
//     service thread pushes a GetResponse message back through the bypass
//     path; the caller blocks until the payload lands in its buffer.
//   * atomics: request/response messages executed by the owner's service
//     thread (single-threaded per host -> linearizable per target word).
//   * barrier(): the Fig. 6 two-round start/end doorbell circulation on
//     ring-like fabrics, or — when TransportTuning::topology_collectives is
//     on, and always on non-ring fabrics, whose doorbell walk would not
//     terminate — a token tree over the routing graph rooted at host 0
//     (children send kBarrierToken up, the root releases down the tree).
//
// Pipelined data path (opt-in via RuntimeOptions::tuning; the default is
// the paper-faithful serial protocol above):
//   * tx_credits > 1: N frames in flight per channel. The receiving
//     adapter latches the ScratchPad bank per doorbell (NtbPort frame
//     latch) and the bypass staging buffer is partitioned into N slots, one
//     per credit, carried in FrameHeader::d.
//   * overlap_segment_setup: window_write charges segment i+1's LUT/
//     descriptor setup concurrently with segment i's DMA (descriptor
//     prefetch), instead of serially.
//   * cut_through_forwarding: an intermediate hop forwards each chunk of a
//     multi-hop message on arrival once the first chunk's network header
//     shows a non-resident target, instead of store-and-forwarding the
//     whole message.
// All three keep the DES deterministic: credits are a FIFO sim::Resource,
// ACKs return in emission order, and chunk forwarding preserves per-link
// FIFO order.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "fabric/fabric.hpp"
#include "obs/hub.hpp"
#include "shmem/message.hpp"
#include "shmem/options.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"

namespace ntbshmem::shmem {

class Runtime;

// Raised by Transport::check_protocol_invariants when a safety invariant
// (credit conservation, staging-slot partition, seq-window discipline) is
// broken — the model checker's violation signal.
class ProtocolViolation : public std::runtime_error {
 public:
  explicit ProtocolViolation(const std::string& what)
      : std::runtime_error(what) {}
};

// Per-PE transport statistics (tests assert on these; benches report them).
struct TransportStats {
  std::uint64_t puts_issued = 0;
  std::uint64_t gets_issued = 0;
  std::uint64_t atomics_issued = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t messages_forwarded = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t delivery_acks_sent = 0;
  // Put payloads written into a resident PE's heap (local + remote arrivals)
  // — the exactly-once ledger the model checker sums against puts_issued.
  std::uint64_t puts_delivered = 0;
  std::uint64_t barriers_completed = 0;
  std::uint64_t barrier_tokens_sent = 0;  // tree barrier: up+down tokens
  // Reliability-layer accounting (all zero when reliability is off).
  std::uint64_t retransmits = 0;        // frames re-emitted (timeout or NAK)
  std::uint64_t ack_timeouts = 0;       // retransmit timers that fired
  std::uint64_t naks_sent = 0;          // checksum/order rejects signalled
  std::uint64_t naks_received = 0;
  std::uint64_t frames_corrupt_dropped = 0;     // checksum mismatch
  std::uint64_t frames_duplicate_dropped = 0;   // seq below expected; re-acked
  std::uint64_t frames_out_of_order_dropped = 0;  // seq gap (go-back-N)
  std::uint64_t invalid_acks_dropped = 0;  // ack word failed redundancy check
  std::uint64_t dma_retries = 0;           // descriptor errors retried
};

class Transport {
 public:
  // One Transport per HOST: it owns the host's NTB channels, staging
  // buffers and service threads, shared by every PE resident on the host
  // (pes_per_host of them; 1 in the paper's prototype).
  Transport(Runtime& runtime, int host_id);
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Registers ISR handlers and spawns the RX/TX service daemons.
  void start_services();

  // Communication-context domain ids: every one-sided operation belongs to
  // a domain, and quiet(domain) drains only that domain's outstanding work
  // (the OpenSHMEM 1.4 context semantics). kDefaultDomain backs
  // SHMEM_CTX_DEFAULT and all non-ctx API calls.
  static constexpr int kDefaultDomain = 0;
  static constexpr int kAllDomains = -1;

  // ---- One-sided data movement (application/PE context) --------------------
  // `origin_pe` identifies the calling PE (a resident of this host).
  // Copies `src` into `target_pe`'s symmetric heap at `heap_offset`.
  // Returns at local completion (locally blocking, per OpenSHMEM).
  void put(std::uint64_t heap_offset, std::span<const std::byte> src,
           int target_pe, int origin_pe, int domain = kDefaultDomain);
  // Copies from `source_pe`'s symmetric heap into `dst`; blocks until the
  // data has arrived.
  void get(std::uint64_t heap_offset, std::span<std::byte> dst, int source_pe,
           int origin_pe);
  // Non-blocking get: returns an op id; completion via quiet(). `cause`
  // parents the request frame's causal span (a blocking get() passes its
  // own op root; a direct call roots a fresh trace when recording is on).
  std::uint32_t get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
                        int source_pe, int origin_pe,
                        int domain = kDefaultDomain,
                        const obs::TraceCtx& cause = {});

  // ---- Remote atomics -------------------------------------------------------
  // Executes `op` on the 4- or 8-byte word at `heap_offset` of `target_pe`;
  // returns the previous value (meaningful for fetching ops).
  std::uint64_t atomic(AtomicOp op, std::uint64_t heap_offset, int target_pe,
                       std::uint8_t width, std::uint64_t operand1,
                       std::uint64_t operand2, int origin_pe);
  // Fire-and-forget non-fetching atomic: returns at local completion; the
  // update is ordered behind prior puts to the same target (same path) and
  // drained by quiet(). Building block of put-with-signal.
  void atomic_post(AtomicOp op, std::uint64_t heap_offset, int target_pe,
                   std::uint8_t width, std::uint64_t operand1, int origin_pe,
                   int domain = kDefaultDomain);
  // Put `src` then update the signal word — the OpenSHMEM 1.5
  // put-with-signal shape; the signal update is delivered after the data.
  void put_signal(std::uint64_t heap_offset, std::span<const std::byte> src,
                  std::uint64_t signal_offset, std::uint64_t signal_value,
                  AtomicOp signal_op, int target_pe, int origin_pe,
                  int domain = kDefaultDomain);

  // ---- Ordering & synchronization ------------------------------------------
  // Drains outstanding remote writes (per the configured CompletionMode)
  // and pending non-blocking gets — of one domain, or of all domains.
  void quiet(int domain = kAllDomains);
  // Put ordering to each PE is FIFO by construction; fence is bookkeeping
  // only (documented in DESIGN.md).
  void fence();
  // Collective barrier across all PEs. With multiple PEs per host the
  // barrier is hierarchical: residents gather locally, each host's lowest
  // PE runs the inter-host protocol, then releases its residents. The
  // inter-host protocol is the paper's Fig. 6 doorbell circulation on
  // ring-like fabrics and the kBarrierToken tree otherwise (or when
  // TransportTuning::topology_collectives opts the ring in).
  void barrier(int origin_pe);
  // Backwards-compatible alias for barrier() (the historical name; the ring
  // protocol is selected automatically on ring-like fabrics).
  void barrier_ring(int origin_pe) { barrier(origin_pe); }
  // Blocks until the RX service signals a local symmetric-heap update
  // (building block of shmem_wait_until).
  void wait_heap_change();

  const TransportStats& stats() const { return stats_; }
  int host_id() const { return host_id_; }

  // Per-TX-channel reliability counters and ack-latency distribution;
  // meaningful only with reliability enabled.
  struct ChannelReliability {
    std::uint64_t retransmits = 0;
    std::uint64_t ack_timeouts = 0;
    std::uint64_t naks_received = 0;
    std::uint64_t acks_matched = 0;  // in-flight records retired by acks
    std::uint64_t stale_acks = 0;    // cumulative acks that retired nothing
    RunningStats ack_latency_ns;  // emission -> retiring ack
  };
  // By adapter/port index (port p talks to topology().port(host, p).peer).
  const ChannelReliability& channel_reliability(int port) const {
    return tx_.at(static_cast<std::size_t>(port))->rel;
  }
  // Ring-surface shim: Direction doubles as the port index (kRight == port
  // 0, kLeft == port 1), matching fabric::Fabric's ring accessors.
  const ChannelReliability& channel_reliability(fabric::Direction d) const {
    return channel_reliability(static_cast<int>(d));
  }
  // Staging buffer for frames arriving through adapter `in_port` (the
  // bypass buffer of paper Fig. 4; written by that port's peer host).
  host::Region staging_in(int in_port) const {
    return staging_in_.at(static_cast<std::size_t>(in_port));
  }
  // Ring-surface shim: frames "from the left" arrive through the left
  // adapter (port 1), frames "from the right" through port 0.
  host::Region staging_region(fabric::Direction from) const {
    return staging_in(static_cast<int>(from));
  }
  // Allocates a fresh completion-domain id (per-PE contexts draw from the
  // host transport so ids never collide between co-resident PEs).
  int allocate_domain() { return next_domain_++; }

  // ---- Model-checker introspection (DESIGN.md §4i) -------------------------
  // FNV hash of this host's protocol state: per-channel credit/in-flight/
  // sequence state, RX/TX/retransmit queues, reassembly and cut-through
  // tables, pending ops, per-domain outstanding counts, barrier token
  // counters, and each adapter's NtbPort register state. Cumulative
  // statistics are excluded (they grow monotonically along every path and
  // would defeat revisit pruning). Unordered containers are folded with a
  // commutative combine so iteration order cannot leak in.
  std::uint64_t state_hash() const;
  // True when no protocol work is pending on this host: empty RX/TX/retx
  // queues, all credits free, no in-flight frames, no reassembly or
  // cut-through residue, all pending gets/atomics done, zero outstanding
  // deliveries in every domain. A runtime whose transports are all
  // quiescent after the PE mains return has fully drained.
  bool quiescent() const;
  // Human-readable summary of what quiescent() found pending (deadlock
  // diagnostics); empty string when quiescent.
  std::string pending_summary() const;
  // Checks the safety invariants that must hold at every scheduler point:
  // credit conservation (free slots + in-flight == capacity, matching the
  // sim::Resource ledger), staging-slot partition (slots distinct, in
  // range, free/in-flight sets disjoint), and — with reliability on — the
  // go-back-N window discipline (in-flight sequence numbers consecutive
  // mod 256, ending just below the channel's next_seq). Throws
  // ProtocolViolation with a diagnostic on the first breach.
  void check_protocol_invariants() const;

 private:
  // One TX adapter of the host. `credits` is the number of frames that may
  // be in flight before the sender must wait for an ACK doorbell: 1 is the
  // paper's handshake; N>1 is the pipelined mode, where the receiver's
  // adapter latches the ScratchPad bank per doorbell and the bypass staging
  // buffer is partitioned into N slots so in-flight payloads never collide.
  // ACKs arrive in emission order (the link and the receiver's service loop
  // are both FIFO), so in-flight bookkeeping is a queue popped by the ACK
  // handler.
  struct TxChannel {
    TxChannel(sim::Engine& engine, const std::string& name, int credits,
              std::uint64_t stage_slot_bytes)
        : slot(engine, name, static_cast<std::size_t>(credits)),
          emit_serial(engine, name + ".emit", 1),
          slot_bytes(stage_slot_bytes) {
      for (int i = 0; i < credits; ++i) free_slots.push_back(i);
    }
    sim::Resource slot;         // frame credits (capacity == tx_credits)
    sim::Resource emit_serial;  // serializes ScratchPad staging + doorbell
    std::uint64_t slot_bytes;   // staging partition owned by one credit
    std::deque<int> free_slots; // staging slots not owned by an in-flight frame
    struct InFlight {
      int stage_slot = 0;
      bool counts_as_delivery = false;
      int delivery_domain = 0;
      // Reliability bookkeeping (untouched when reliability is off). The
      // header and doorbell are kept for retransmission — payloads stay in
      // the credit-owned staging slot, so a retransmit is header-only.
      std::uint8_t seq = 0;
      int doorbell = 0;
      int retries = 0;
      FrameHeader hdr;
      sim::Time emitted_at = 0;
      sim::CallbackHandle retx_timer;
      // Async-span id of the frame's lifetime on the exported timeline
      // (emission -> retiring ack); 0 when tracing is off.
      std::uint64_t obs_span = 0;
      // Causal-trace bookkeeping (0/null when causal recording is off).
      // `causal_id` is the kFrame span closed by the retiring ack;
      // `wire_ctx` is the context staged with every (re)emission — its
      // parent is the ORIGINAL frame span, so the receiver links to the
      // same node no matter which emission attempt delivered.
      std::uint64_t causal_id = 0;
      obs::TraceCtx wire_ctx;
    };
    std::deque<InFlight> inflight;  // emission order; ACKs pop the front
    std::uint8_t next_seq = 0;      // reliability: next sequence to assign
    ChannelReliability rel;
  };

  enum class RxTokenKind : std::uint8_t {
    kFrame,         // ScratchPad frame notify (DMAPUT / DMAGET doorbells)
    kBarrierStart,  // DOORBELL_BARRIER_START (ring protocol only)
    kBarrierEnd,    // DOORBELL_BARRIER_END (ring protocol only)
  };

  struct RxToken {
    int from = 0;  // adapter/port index the signal arrived through
    RxTokenKind kind = RxTokenKind::kFrame;
    // Header bank latched by the adapter at doorbell-arrival time (valid
    // for kFrame tokens). Reading it is charged at process_frame time.
    std::array<std::uint32_t, ntb::kNumScratchpads> regs{};
    // Causal context staged by the sender alongside the frame, plus the
    // doorbell-arrival time (IRQ-delay attribution). Null when causal
    // recording is off or for control tokens.
    obs::TraceCtx ctx;
    sim::Time latched_at = 0;
  };

  struct OutboundItem {
    enum class Kind : std::uint8_t {
      kMessage,   // whole logical message, sent chunked hop by hop
      kRawFrame,  // get-request forwarding (payload-free frame)
      kChunk,     // cut-through: one chunk of a partially arrived message
    };
    Kind kind = Kind::kMessage;
    int port = 0;                     // egress adapter to send through
    std::vector<std::byte> message;   // message bytes, or one chunk's payload
    FrameHeader raw_frame;            // get-request forwarding
    // Cut-through chunk coordinates (kind == kChunk).
    std::uint32_t chunk_msg_id = 0;
    std::uint64_t chunk_off = 0;
    std::uint32_t chunk_total = 0;
    // Causal cause of the forward (the ingress service span, hop already
    // incremented); the TX service parents its kForward span here.
    obs::TraceCtx ctx;
  };

  struct Reassembly {
    std::vector<std::byte> data;
    std::uint64_t received = 0;
  };

  // Cut-through forwarding state for one in-transit chunked message: once
  // the first chunk reveals a non-resident target, every chunk is forwarded
  // on arrival under a fresh outgoing message id.
  struct CutThrough {
    std::uint32_t out_msg_id = 0;
    std::uint64_t forwarded = 0;  // bytes forwarded so far
    // Egress port resolved from the first chunk's network header; later
    // chunks are header-less and must follow the same port (the routing
    // table is static per run, so the path cannot change mid-message).
    int out_port = 0;
  };

  struct PendingGet {
    std::byte* dst = nullptr;
    std::uint32_t len = 0;
    bool done = false;
    int domain = 0;
  };

  struct PendingAtomic {
    std::uint64_t old_value = 0;
    bool done = false;
  };

  // ---- context helpers ----
  int pes_per_host() const;
  int host_of(int pe) const { return pe / pes_per_host(); }
  bool is_resident(int pe) const { return host_of(pe) == host_id_; }
  int leader_pe() const { return host_id_ * pes_per_host(); }
  fabric::Fabric& fabric() const;
  int degree() const;
  ntb::NtbPort& port(int p) const;
  TxChannel& channel(int p) { return *tx_[static_cast<std::size_t>(p)]; }
  // Host on the far end of adapter `p` (and the adapter index it arrives
  // through over there — whose staging buffer receives our staged frames).
  int peer_host(int p) const;
  int peer_port(int p) const;
  // Precomputed routing table for the configured RoutingMode.
  const fabric::RoutingTable& routes() const;
  // First-hop egress port and total hop count toward `target` (a PE).
  fabric::PortRoute route_to(int target) const;
  // Egress port/hops for a response travelling back to `origin` (a PE); on
  // kRightOnly rings responses travel leftward so hop counts stay symmetric.
  fabric::PortRoute response_route_to(int origin) const;
  // Egress port for forwarding a transit message toward `target_pe` that
  // arrived through `in`.
  int forward_port(int target_pe, int in) const;
  const TimingParams& timing() const;
  const TransportTuning& tuning() const;

  // ---- send-side primitives ----
  // Every primitive takes an optional causal `cause`: the span context the
  // emitted frame/DMA/stall spans parent under (null = record nothing).
  // Blocks until a frame credit is free and returns the staging slot index
  // owned by that credit until the matching ACK doorbell.
  int acquire_send_credit(int p, const obs::TraceCtx& cause = {});
  // Writes the 7 header registers (+ checksum reg under reliability).
  void write_frame_regs(int p, const FrameHeader& hdr);
  // write_frame_regs + doorbell; channel must be held. `wire_ctx` is staged
  // into the port's causal sidecar so the receiver's latch carries it.
  void emit_frame(int p, const FrameHeader& hdr, int doorbell,
                  const obs::TraceCtx& wire_ctx = {});
  // emit_frame plus in-flight bookkeeping: serializes the ScratchPad
  // staging against other credit holders and registers the record the ACK
  // handler consumes. `slot` is the staging slot from acquire_send_credit.
  void emit_frame_inflight(int p, const FrameHeader& hdr, int doorbell,
                           int slot, bool counts_as_delivery,
                           int delivery_domain,
                           const obs::TraceCtx& cause = {});
  // Data write through a window with the configured path; charges
  // segment_setup per LUT segment when `app_context` is true (serially, or
  // overlapped with the previous segment's DMA under the pipelined tuning).
  void window_write(int p, int window, host::Region region, std::uint64_t off,
                    std::span<const std::byte> src, bool app_context,
                    const obs::TraceCtx& cause = {});
  // Sends one message (header+payload) one hop through adapter `p`,
  // chunked through the bypass buffer with one handshake per chunk. Any
  // process context.
  void send_message_chunked(int p, std::span<const std::byte> message,
                            const obs::TraceCtx& cause = {});
  // Sends one chunk of the logical message `msg_id` (`total` bytes overall)
  // one hop through `p`; the chunk's payload starts at message offset `off`.
  void send_chunk(int p, std::span<const std::byte> payload,
                  std::uint32_t msg_id, std::uint64_t off, std::uint32_t total,
                  const obs::TraceCtx& cause = {});
  // Application fast path: stage the whole message in one handshake.
  void send_message_staged(int p, std::span<const std::byte> message,
                           const obs::TraceCtx& cause = {});
  // `ctx` (when valid) is stamped into the message header's causal fields,
  // so the logical-message link survives reassembly and forwarding.
  std::vector<std::byte> build_message(const MessageHeader& header,
                                       std::span<const std::byte> payload,
                                       const obs::TraceCtx& ctx = {});
  void enqueue_outbound(OutboundItem item);

  // ---- reliability (all no-ops / unreachable when the layer is off) ----
  bool reliability_on() const { return tuning().reliability.enabled; }
  TxChannel::InFlight* find_inflight(TxChannel& ch, std::uint8_t seq);
  // Arms the per-frame retransmit timer (timeout grows with rec.retries).
  void arm_retx_timer(int p, TxChannel::InFlight& rec);
  // Scheduler context: queue a retransmit and wake the rel service.
  void on_ack_timeout(int p, std::uint8_t seq);
  void on_nak(int p);
  // Retires in-flight records up to (and including) `seq` — cumulative ack.
  void retire_acked(int p, std::uint8_t seq);
  // Re-emits the header of in-flight frame `seq` (payload still staged);
  // throws after ReliabilityParams::max_retries.
  void retransmit(int p, std::uint8_t seq);
  void rel_service_body();
  // Receiver side: signal a checksum/order reject to the sender.
  void nak_frame(int from);
  // Accept gate for a frame's sequence number; true => process it.
  bool accept_frame_seq(const RxToken& token, const FrameHeader& f);

  // ---- receive side ----
  void on_rx_token(int from, RxTokenKind kind);
  void on_ack(int p);
  void rx_service_body();
  void tx_service_body();
  void process_frame(const RxToken& token);
  // Cut-through fast path for a kChunk frame; returns true when the chunk
  // was forwarded (consumed) instead of entering reassembly.
  bool try_cut_through(const FrameHeader& f, int from,
                       const obs::TraceCtx& cause = {});
  void ack_frame(int from);
  void dispatch_message(std::vector<std::byte> message, int from);
  // Local delivery between co-resident PEs (shared-memory path).
  void local_put(std::uint64_t heap_offset, std::span<const std::byte> src,
                 int target_pe);
  void deliver_put(const MessageHeader& h, std::span<const std::byte> payload);
  void deliver_get_response(const MessageHeader& h,
                            std::span<const std::byte> payload);
  void serve_get_request(const FrameHeader& f,
                         const obs::TraceCtx& cause = {});
  void execute_atomic_request(const MessageHeader& h);
  void deliver_atomic_response(const MessageHeader& h);
  std::uint64_t apply_atomic(AtomicOp op, int target_pe,
                             std::uint64_t heap_offset, std::uint8_t width,
                             std::uint64_t operand1, std::uint64_t operand2);
  void send_delivery_ack(std::uint8_t origin, std::uint32_t op_id,
                         const obs::TraceCtx& cause = {});
  // Registers an outstanding counted delivery in `domain`.
  void track_delivery(int domain, std::uint32_t op_id);
  void note_delivery_completed(int domain);
  // Completion of an op id tracked via track_delivery (DeliveryAck path).
  void note_delivery_completed_op(std::uint32_t op_id);

  // ---- barrier protocols ----
  // Tree barrier is mandatory off-ring (the doorbell circulation assumes a
  // ring) and opt-in on ring-like fabrics via topology_collectives.
  bool use_tree_barrier() const;
  // Inter-host half of the barrier, run by the host leader PE only.
  void barrier_leader_ring();   // Fig. 6 doorbell circulation
  // kBarrierToken tree rooted at host 0; tokens parent under `cause` (the
  // leader's barrier root span).
  void barrier_leader_tree(const obs::TraceCtx& cause = {});
  // Sends one barrier token (phase 0 = up, 1 = down) to an adjacent host's
  // leader through the normal message path.
  void send_barrier_token(int dst_host, int phase,
                          const obs::TraceCtx& cause = {});

  // Appends a protocol-trace record when tracing is enabled.
  void trace(const char* category, const std::string& message);
  // ---- observability ----
  // Caches tracks/categories/instruments from the engine's obs::Hub (no-op
  // without one); called once from the constructor.
  void init_obs();
  // Track of the calling PE (per-resident-PE span attribution); 0 when no
  // hub is attached.
  obs::TrackId pe_track(int origin_pe) const {
    return pe_tracks_.empty()
               ? 0
               : pe_tracks_[static_cast<std::size_t>(origin_pe - leader_pe())];
  }
  // Closes a retired frame's lifetime span (ACK time).
  void end_frame_span(int p, const TxChannel::InFlight& rec);
  // Charges the CPU cost of a local DRAM-to-DRAM copy.
  void charge_local_copy(std::uint64_t bytes);
  // Models the service thread's scheduling latency after an idle wake.
  void charge_service_wake();
  // ---- causal cross-hop tracing ----
  bool causal_on() const {
    return causal_ != nullptr && causal_->enabled();
  }
  // Roots a fresh causal trace for one application operation (family =
  // obs::kFamily*); returns 0 when causal recording is off.
  std::uint64_t begin_op_root(std::uint8_t family, std::uint64_t bytes);
  // Context of span `id` ({0,0,0} for id 0 / recording off).
  obs::TraceCtx ctx_of(std::uint64_t id) const;
  // Closes span `id` at the current virtual time (no-op for id 0).
  void end_causal(std::uint64_t id);

  Runtime& runtime_;
  int host_id_;

  // Incoming bypass/staging buffers, one per adapter (indexed by the port
  // the traffic arrives through; a ring host's port 0 faces right).
  std::vector<host::Region> staging_in_;

  // TX channels, one per adapter (same port indexing).
  std::vector<std::unique_ptr<TxChannel>> tx_;

  // RX service state. (Hot-path lookups are unordered_map: nothing relies
  // on key order, and the stress/bench workloads hit these per frame.)
  std::deque<RxToken> rx_queue_;
  std::unique_ptr<sim::Event> rx_event_;
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;  // origin<<32|id
  std::unordered_map<std::uint64_t, CutThrough> cut_through_;  // same key

  // TX service state.
  std::deque<OutboundItem> tx_queue_;
  std::unique_ptr<sim::Event> tx_event_;

  // Reliability service state: retransmits queued by ISR/timer callbacks
  // (scheduler context cannot block on register writes) and drained by the
  // rel service daemon, which is spawned only when reliability is enabled.
  struct RetxRequest {
    int port = 0;
    std::uint8_t seq = 0;
  };
  std::deque<RetxRequest> retx_queue_;
  std::unique_ptr<sim::Event> rel_event_;
  // Go-back-N receive state: next expected sequence per arrival port.
  std::vector<std::uint8_t> rx_expected_seq_;

  // Pending application operations.
  std::unordered_map<std::uint32_t, PendingGet> pending_gets_;
  std::unordered_map<std::uint32_t, PendingAtomic> pending_atomics_;
  std::unique_ptr<sim::Event> op_event_;

  // Outstanding remote writes per context domain (kFullDelivery
  // accounting). delivery_domain_of_op_ maps staged/atomic op ids back to
  // their domain for the end-to-end DeliveryAck path.
  std::unordered_map<int, std::uint64_t> outstanding_by_domain_;
  std::unordered_map<std::uint32_t, int> delivery_domain_of_op_;
  std::unique_ptr<sim::Event> quiet_event_;

  // Ring-barrier token counters (signals arrive on the left port, Fig. 6).
  std::uint64_t barrier_start_tokens_ = 0;
  std::uint64_t barrier_end_tokens_ = 0;
  // Tree-barrier token counters (kBarrierToken messages).
  std::uint64_t barrier_up_tokens_ = 0;
  std::uint64_t barrier_down_tokens_ = 0;
  // Tree shape (computed once in start_services when the tree barrier is
  // active): the next hop toward host 0 is the parent; hosts whose parent
  // is this host are the children, in increasing host order.
  int barrier_parent_ = -1;
  std::vector<int> barrier_children_;
  std::unique_ptr<sim::Event> barrier_event_;
  // Hierarchical barrier state for co-resident PEs.
  int local_barrier_arrived_ = 0;
  std::uint64_t local_barrier_round_ = 0;
  std::unique_ptr<sim::Event> local_barrier_event_;

  // Local symmetric-heap update notification (shmem_wait_until).
  std::unique_ptr<sim::Event> heap_event_;

  std::uint32_t next_op_id_ = 1;
  std::uint32_t next_msg_id_ = 1;
  int next_domain_ = 1;  // 0 is reserved (kDefaultDomain, unused directly)
  TransportStats stats_;

  // Observability: interned ids + instruments cached by init_obs(). The
  // tracer pointer stays null without a hub; counters/histograms fall back
  // to the shared null instruments so hot paths never branch.
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::TrackId> pe_tracks_;       // one per resident PE
  // Per-ingress-port RX processing tracks ("rx_service@<portname>"): frames
  // arriving through different adapters get their own named timeline rows
  // instead of interleaving on one shared "rx_service" track.
  std::vector<obs::TrackId> rx_tracks_;
  std::vector<obs::TrackId> frames_track_;    // per adapter/port
  obs::CategoryId cat_op_ = 0;
  obs::CategoryId cat_frame_ = 0;
  obs::CategoryId cat_barrier_ = 0;
  obs::EventId ev_put_ = 0;
  obs::EventId ev_get_ = 0;
  obs::EventId ev_atomic_ = 0;
  obs::EventId ev_barrier_ = 0;
  obs::EventId ev_frame_ = 0;
  obs::EventId ev_process_frame_ = 0;
  obs::Counter* obs_credit_stalls_ = obs::MetricsRegistry::null_counter();
  obs::Counter* obs_credit_stall_ns_ = obs::MetricsRegistry::null_counter();
  obs::Histogram* obs_credit_stall_hist_ =
      obs::MetricsRegistry::null_histogram();
  obs::Histogram* obs_barrier_hist_ = obs::MetricsRegistry::null_histogram();

  // Causal recorder (null without a hub; gated again by causal_enabled).
  obs::CausalRecorder* causal_ = nullptr;
  // Always-on bounded flight recorder: last-N protocol events, dumped on
  // fault-recovery failure (Runtime::dump_flight). Pure ring-buffer stores,
  // no allocation, no engine interaction — safe on every hot path.
  obs::FlightRecorder flight_;
};

}  // namespace ntbshmem::shmem
