#include "shmem/collectives.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace ntbshmem::shmem {

namespace {

// ---- counting-token primitives on the scratch block -------------------------

long read_local_long(Context& ctx, std::uint64_t off) {
  long v = 0;
  ctx.heap().read(off, std::span<std::byte>(
                           reinterpret_cast<std::byte*>(&v), sizeof v));
  return v;
}

void wait_tokens(Context& ctx, std::uint64_t off, long need) {
  while (read_local_long(ctx, off) < need) ctx.wait_heap_change();
}

// Self-consuming tokens: counters only ever carry "deposited minus
// consumed", so repeated collectives need no reset discipline.
void consume_tokens(Context& ctx, std::uint64_t off, long k) {
  ctx.transport().atomic(AtomicOp::kAdd, off, ctx.pe(), 8,
                         static_cast<std::uint64_t>(-k), 0, ctx.pe());
}

void add_token(Context& ctx, int pe, std::uint64_t off, long k = 1) {
  ctx.transport().atomic(AtomicOp::kAdd, off, pe, 8,
                         static_cast<std::uint64_t>(k), 0, ctx.pe());
}

void put_bytes(Context& ctx, std::uint64_t heap_off, const void* src,
               std::size_t n, int pe) {
  ctx.transport().put(
      heap_off,
      std::span<const std::byte>(static_cast<const std::byte*>(src), n), pe,
      ctx.pe(), ctx.default_domain());
}

}  // namespace

// ---- ActiveSet ---------------------------------------------------------------

int ActiveSet::index_of(int pe) const {
  if (pe < start) return -1;
  const int delta = pe - start;
  if (delta % stride != 0) return -1;
  const int idx = delta / stride;
  return idx < size ? idx : -1;
}

void ActiveSet::validate(int npes) const {
  if (size < 1 || stride < 1 || start < 0 || member(size - 1) >= npes) {
    throw std::invalid_argument("invalid OpenSHMEM active set");
  }
}

// ---- Barriers -----------------------------------------------------------------

void barrier_set(Context& ctx, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("barrier_set: calling PE not in active set");
  }
  ctx.quiet();
  if (set.size == 1) return;
  const int root = set.member(0);
  if (ctx.pe() == root) {
    wait_tokens(ctx, CollectiveScratch::kBarrierCounter, set.size - 1);
    consume_tokens(ctx, CollectiveScratch::kBarrierCounter, set.size - 1);
    for (int i = 1; i < set.size; ++i) {
      add_token(ctx, set.member(i), CollectiveScratch::kBarrierRelease);
    }
  } else {
    add_token(ctx, root, CollectiveScratch::kBarrierCounter);
    wait_tokens(ctx, CollectiveScratch::kBarrierRelease, 1);
    consume_tokens(ctx, CollectiveScratch::kBarrierRelease, 1);
  }
}

namespace {

void barrier_dissemination(Context& ctx) {
  ctx.quiet();
  const int n = ctx.npes();
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    if (round >= 8) throw std::logic_error("dissemination rounds exceed slots");
    const std::uint64_t flag =
        CollectiveScratch::kDissemFlags + 8ull * static_cast<unsigned>(round);
    const int partner = (ctx.pe() + dist) % n;
    add_token(ctx, partner, flag);
    wait_tokens(ctx, flag, 1);
    consume_tokens(ctx, flag, 1);
  }
}

}  // namespace

void barrier_all(Context& ctx, BarrierAlgorithm alg) {
  switch (alg) {
    case BarrierAlgorithm::kPaperRing:
      ctx.barrier_all();  // Fig. 6 doorbell protocol in the transport
      return;
    case BarrierAlgorithm::kCentralized:
      barrier_set(ctx, ActiveSet{0, 1, ctx.npes()});
      return;
    case BarrierAlgorithm::kDissemination:
      barrier_dissemination(ctx);
      return;
  }
  throw std::logic_error("unknown barrier algorithm");
}

// ---- Broadcast -----------------------------------------------------------------

void broadcast(Context& ctx, void* target, const void* source,
               std::size_t nbytes, int root_idx, const ActiveSet& set) {
  set.validate(ctx.npes());
  if (root_idx < 0 || root_idx >= set.size) {
    throw std::invalid_argument("broadcast: root index outside active set");
  }
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("broadcast: calling PE not in active set");
  }
  if (set.size == 1) return;
  if (idx == root_idx) {
    const std::uint64_t target_off = ctx.symmetric_offset(target);
    for (int i = 0; i < set.size; ++i) {
      if (i == root_idx) continue;  // 1.x semantics: root target untouched
      put_bytes(ctx, target_off, source, nbytes, set.member(i));
    }
    ctx.quiet();  // data delivered before the flags
    for (int i = 0; i < set.size; ++i) {
      if (i == root_idx) continue;
      add_token(ctx, set.member(i), CollectiveScratch::kBcastFlag);
    }
  } else {
    wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
  }
  // Exit barrier: the token slots carry no collective identity, so no
  // member may start the next collective while another still waits in this
  // one (stronger than the 1.x spec requires; documented in DESIGN.md).
  barrier_set(ctx, set);
}

// ---- Reduction -----------------------------------------------------------------

void reduce(Context& ctx, void* target, const void* source, std::size_t count,
            std::size_t elem_size, const ActiveSet& set,
            const std::function<void(void*, const void*, std::size_t)>& combine) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("reduce: calling PE not in active set");
  }
  if (elem_size == 0 || elem_size > CollectiveScratch::kReduceBufBytes) {
    throw std::invalid_argument("reduce: unsupported element size");
  }
  auto* src_bytes = static_cast<const std::byte*>(source);
  auto* dst_bytes = static_cast<std::byte*>(target);
  if (set.size == 1) {
    std::memmove(dst_bytes, src_bytes, count * elem_size);
    return;
  }
  const int m = set.size;
  const std::size_t elems_per_chunk =
      CollectiveScratch::kReduceBufBytes / elem_size;
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  std::vector<std::byte> tmp;

  // Pipeline: member 0 seeds each chunk into member 1's reduce buffer;
  // member k folds its contribution in and forwards; the last member
  // distributes the result. kReduceAck tokens flow backwards so a buffer
  // is never overwritten before its owner copied it out; every send waits
  // for its own ack, so no residual tokens survive the call.
  auto send_chunk = [&](const std::byte* data, std::size_t bytes, int to) {
    put_bytes(ctx, CollectiveScratch::kReduceBuf, data, bytes,
              set.member(to));
    ctx.quiet();
    add_token(ctx, set.member(to), CollectiveScratch::kReduceFlag);
    wait_tokens(ctx, CollectiveScratch::kReduceAck, 1);
    consume_tokens(ctx, CollectiveScratch::kReduceAck, 1);
  };

  for (std::size_t base = 0; base < count; base += elems_per_chunk) {
    const std::size_t n = std::min(elems_per_chunk, count - base);
    const std::size_t bytes = n * elem_size;
    const std::size_t byte_off = base * elem_size;

    if (idx == 0) {
      send_chunk(src_bytes + byte_off, bytes, 1);
    } else {
      wait_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      tmp.resize(bytes);
      ctx.heap().read(CollectiveScratch::kReduceBuf,
                      std::span<std::byte>(tmp.data(), bytes));
      // Buffer copied out: let the upstream member reuse it.
      add_token(ctx, set.member(idx - 1), CollectiveScratch::kReduceAck);
      combine(tmp.data(), src_bytes + byte_off, n);
      if (idx < m - 1) {
        send_chunk(tmp.data(), bytes, idx + 1);
      } else {
        // Last member owns the full result for this chunk.
        ctx.heap().write(target_off + byte_off,
                         std::span<const std::byte>(tmp.data(), bytes));
        for (int i = 0; i < m - 1; ++i) {
          put_bytes(ctx, target_off + byte_off, tmp.data(), bytes,
                    set.member(i));
        }
        ctx.quiet();
        for (int i = 0; i < m - 1; ++i) {
          add_token(ctx, set.member(i), CollectiveScratch::kBcastFlag);
        }
      }
    }
    if (idx != m - 1) {
      wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    }
  }
  // Exit barrier: see broadcast().
  barrier_set(ctx, set);
}

// ---- Collect / fcollect ----------------------------------------------------------

void fcollect(Context& ctx, void* target, const void* source,
              std::size_t nbytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("fcollect: calling PE not in active set");
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  const std::uint64_t my_off = static_cast<std::uint64_t>(idx) * nbytes;
  for (int i = 0; i < set.size; ++i) {
    const int pe = set.member(i);
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + my_off,
                       std::span<const std::byte>(
                           static_cast<const std::byte*>(source), nbytes));
    } else {
      put_bytes(ctx, target_off + my_off, source, nbytes, pe);
    }
  }
  barrier_set(ctx, set);
}

void collect(Context& ctx, void* target, const void* source,
             std::size_t nbytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("collect: calling PE not in active set");
  }
  // Cursor chain: member k learns the byte offset of its block from k-1.
  std::uint64_t my_off = 0;
  if (idx > 0) {
    wait_tokens(ctx, CollectiveScratch::kCursorFlag, 1);
    consume_tokens(ctx, CollectiveScratch::kCursorFlag, 1);
    my_off = static_cast<std::uint64_t>(
        read_local_long(ctx, CollectiveScratch::kCursorValue));
  }
  if (idx < set.size - 1) {
    const long next_off = static_cast<long>(my_off + nbytes);
    put_bytes(ctx, CollectiveScratch::kCursorValue, &next_off,
              sizeof next_off, set.member(idx + 1));
    ctx.quiet();
    add_token(ctx, set.member(idx + 1), CollectiveScratch::kCursorFlag);
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  for (int i = 0; i < set.size; ++i) {
    const int pe = set.member(i);
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + my_off,
                       std::span<const std::byte>(
                           static_cast<const std::byte*>(source), nbytes));
    } else {
      put_bytes(ctx, target_off + my_off, source, nbytes, pe);
    }
  }
  barrier_set(ctx, set);
}

void alltoall(Context& ctx, void* target, const void* source,
              std::size_t block_bytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("alltoall: calling PE not in active set");
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  auto* src_bytes = static_cast<const std::byte*>(source);
  const std::uint64_t slot_off =
      static_cast<std::uint64_t>(idx) * block_bytes;
  for (int j = 0; j < set.size; ++j) {
    const int pe = set.member(j);
    const std::byte* block = src_bytes + static_cast<std::size_t>(j) * block_bytes;
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + slot_off,
                       std::span<const std::byte>(block, block_bytes));
    } else {
      put_bytes(ctx, target_off + slot_off, block, block_bytes, pe);
    }
  }
  barrier_set(ctx, set);
}

// ---- Locks -------------------------------------------------------------------------

namespace {
constexpr sim::Dur kLockBackoff = sim::usec(100);
}

void set_lock(Context& ctx, long* lock) {
  const std::uint64_t off = ctx.symmetric_offset(lock);
  const std::uint64_t token = static_cast<std::uint64_t>(ctx.pe()) + 1;
  for (;;) {
    const std::uint64_t old =
        ctx.transport().atomic(AtomicOp::kCompareSwap, off, 0, 8,
                               /*desired=*/token, /*expected=*/0, ctx.pe());
    if (old == 0) return;
    ctx.runtime().engine().wait_for(kLockBackoff);
  }
}

int test_lock(Context& ctx, long* lock) {
  const std::uint64_t off = ctx.symmetric_offset(lock);
  const std::uint64_t token = static_cast<std::uint64_t>(ctx.pe()) + 1;
  const std::uint64_t old = ctx.transport().atomic(
      AtomicOp::kCompareSwap, off, 0, 8, token, 0, ctx.pe());
  return old == 0 ? 0 : 1;
}

void clear_lock(Context& ctx, long* lock) {
  ctx.quiet();  // writes under the lock must be visible before release
  const std::uint64_t off = ctx.symmetric_offset(lock);
  ctx.transport().atomic(AtomicOp::kSet, off, 0, 8, 0, 0, ctx.pe());
}

}  // namespace ntbshmem::shmem
