#include "shmem/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "backend/backend.hpp"

namespace ntbshmem::shmem {

namespace {

// ---- counting-token primitives on the scratch block -------------------------

long read_local_long(Context& ctx, std::uint64_t off) {
  long v = 0;
  ctx.heap().read(off, std::span<std::byte>(
                           reinterpret_cast<std::byte*>(&v), sizeof v));
  return v;
}

void wait_tokens(Context& ctx, std::uint64_t off, long need) {
  while (read_local_long(ctx, off) < need) ctx.wait_heap_change();
}

// Self-consuming tokens: counters only ever carry "deposited minus
// consumed", so repeated collectives need no reset discipline.
void consume_tokens(Context& ctx, std::uint64_t off, long k) {
  ctx.chan().atomic(AtomicOp::kAdd, off, ctx.pe(), 8,
                    static_cast<std::uint64_t>(-k), 0);
}

void add_token(Context& ctx, int pe, std::uint64_t off, long k = 1) {
  ctx.chan().atomic(AtomicOp::kAdd, off, pe, 8, static_cast<std::uint64_t>(k),
                    0);
}

void put_bytes(Context& ctx, std::uint64_t heap_off, const void* src,
               std::size_t n, int pe) {
  ctx.chan().put(
      heap_off,
      std::span<const std::byte>(static_cast<const std::byte*>(src), n), pe,
      ctx.default_domain());
}

// ---- Topology-aware relay trees ---------------------------------------------
//
// Gated exactly like the transport's tree barrier: opt-in via
// TransportTuning::topology_collectives on ring-like fabrics (default off
// keeps the paper's linear root-to-member loops bit-identical), always on
// elsewhere — the hop-ordered tree is the point of a richer topology.
bool use_tree_collectives(Context& ctx) {
  Runtime& rt = ctx.runtime();
  // The shm backend has no routing graph to build a relay tree over; its
  // flat segment makes the linear loops the right shape anyway.
  if (!rt.has_fabric()) return false;
  return rt.options().tuning.topology_collectives ||
         !rt.fabric().topology().ring_like();
}

// Set indices ordered root-first, then by (routing hops from the root's
// host, set index). The binary-heap rule over this order — parent of
// order[p] is order[(p - 1) / 2] — yields a relay tree whose depth follows
// routing distance, so hosts near the root forward to hosts further out.
// Pure data: identical on every member because it depends only on the
// static routing table and the set.
std::vector<int> tree_order(Context& ctx, const ActiveSet& set,
                            int root_idx) {
  Runtime& rt = ctx.runtime();
  const fabric::RoutingTable& routes =
      rt.fabric().routing(rt.options().routing);
  const int per_host = rt.options().pes_per_host;
  const int root_host = set.member(root_idx) / per_host;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(set.size));
  order.push_back(root_idx);
  for (int i = 0; i < set.size; ++i) {
    if (i != root_idx) order.push_back(i);
  }
  std::sort(order.begin() + 1, order.end(), [&](int a, int b) {
    const int ha = routes.hops(root_host, set.member(a) / per_host);
    const int hb = routes.hops(root_host, set.member(b) / per_host);
    return ha != hb ? ha < hb : a < b;
  });
  return order;
}

int tree_pos(const std::vector<int>& order, int idx) {
  for (std::size_t p = 0; p < order.size(); ++p) {
    if (order[p] == idx) return static_cast<int>(p);
  }
  throw std::logic_error("tree_order lost a set member");
}

// Set indices of the (up to two) children of position `pos`.
std::vector<int> tree_children(const std::vector<int>& order, int pos) {
  std::vector<int> kids;
  for (int c = 2 * pos + 1; c <= 2 * pos + 2; ++c) {
    if (c < static_cast<int>(order.size())) {
      kids.push_back(order[static_cast<std::size_t>(c)]);
    }
  }
  return kids;
}

}  // namespace

// ---- ActiveSet ---------------------------------------------------------------

int ActiveSet::index_of(int pe) const {
  if (pe < start) return -1;
  const int delta = pe - start;
  if (delta % stride != 0) return -1;
  const int idx = delta / stride;
  return idx < size ? idx : -1;
}

void ActiveSet::validate(int npes) const {
  if (size < 1 || stride < 1 || start < 0 || member(size - 1) >= npes) {
    throw std::invalid_argument("invalid OpenSHMEM active set");
  }
}

// ---- Barriers -----------------------------------------------------------------

void barrier_set(Context& ctx, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("barrier_set: calling PE not in active set");
  }
  ctx.quiet();
  if (set.size == 1) return;
  const int root = set.member(0);
  if (ctx.pe() == root) {
    wait_tokens(ctx, CollectiveScratch::kBarrierCounter, set.size - 1);
    consume_tokens(ctx, CollectiveScratch::kBarrierCounter, set.size - 1);
    for (int i = 1; i < set.size; ++i) {
      add_token(ctx, set.member(i), CollectiveScratch::kBarrierRelease);
    }
  } else {
    add_token(ctx, root, CollectiveScratch::kBarrierCounter);
    wait_tokens(ctx, CollectiveScratch::kBarrierRelease, 1);
    consume_tokens(ctx, CollectiveScratch::kBarrierRelease, 1);
  }
}

namespace {

void barrier_dissemination(Context& ctx) {
  ctx.quiet();
  const int n = ctx.npes();
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    if (round >= 8) throw std::logic_error("dissemination rounds exceed slots");
    const std::uint64_t flag =
        CollectiveScratch::kDissemFlags + 8ull * static_cast<unsigned>(round);
    const int partner = (ctx.pe() + dist) % n;
    add_token(ctx, partner, flag);
    wait_tokens(ctx, flag, 1);
    consume_tokens(ctx, flag, 1);
  }
}

}  // namespace

void barrier_all(Context& ctx, BarrierAlgorithm alg) {
  switch (alg) {
    case BarrierAlgorithm::kPaperRing:
      ctx.barrier_all();  // Fig. 6 doorbell protocol in the transport
      return;
    case BarrierAlgorithm::kCentralized:
      barrier_set(ctx, ActiveSet{0, 1, ctx.npes()});
      return;
    case BarrierAlgorithm::kDissemination:
      barrier_dissemination(ctx);
      return;
  }
  throw std::logic_error("unknown barrier algorithm");
}

// ---- Broadcast -----------------------------------------------------------------

namespace {

// Hop-ordered relay tree: the root puts to its (at most two) children; each
// member relays out of its own target buffer once the payload arrived.
// O(log n) rounds instead of the linear root loop, and every tree edge
// points outward in routing distance.
void broadcast_tree(Context& ctx, void* target, const void* source,
                    std::size_t nbytes, int root_idx, const ActiveSet& set) {
  const int idx = set.index_of(ctx.pe());
  const std::vector<int> order = tree_order(ctx, set, root_idx);
  const int pos = tree_pos(order, idx);
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  const void* relay = source;
  if (pos != 0) {
    wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    relay = target;  // payload just landed here; forward from it
  }
  const std::vector<int> kids = tree_children(order, pos);
  if (!kids.empty()) {
    for (const int k : kids) {
      put_bytes(ctx, target_off, relay, nbytes, set.member(k));
    }
    ctx.quiet();  // data delivered before the flags
    for (const int k : kids) {
      add_token(ctx, set.member(k), CollectiveScratch::kBcastFlag);
    }
  }
  barrier_set(ctx, set);
}

}  // namespace

void broadcast(Context& ctx, void* target, const void* source,
               std::size_t nbytes, int root_idx, const ActiveSet& set) {
  set.validate(ctx.npes());
  if (root_idx < 0 || root_idx >= set.size) {
    throw std::invalid_argument("broadcast: root index outside active set");
  }
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("broadcast: calling PE not in active set");
  }
  if (set.size == 1) return;
  if (use_tree_collectives(ctx)) {
    broadcast_tree(ctx, target, source, nbytes, root_idx, set);
    return;
  }
  if (idx == root_idx) {
    const std::uint64_t target_off = ctx.symmetric_offset(target);
    for (int i = 0; i < set.size; ++i) {
      if (i == root_idx) continue;  // 1.x semantics: root target untouched
      put_bytes(ctx, target_off, source, nbytes, set.member(i));
    }
    ctx.quiet();  // data delivered before the flags
    for (int i = 0; i < set.size; ++i) {
      if (i == root_idx) continue;
      add_token(ctx, set.member(i), CollectiveScratch::kBcastFlag);
    }
  } else {
    wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
  }
  // Exit barrier: the token slots carry no collective identity, so no
  // member may start the next collective while another still waits in this
  // one (stronger than the 1.x spec requires; documented in DESIGN.md).
  barrier_set(ctx, set);
}

// ---- Reduction -----------------------------------------------------------------

namespace {

// Tree reduction over the same hop-ordered relay tree as broadcast_tree:
// partials fold leaf-to-root, the result relays root-to-leaf into every
// member's target. Each member owns a single kReduceBuf, so sibling
// subtrees are serialized by explicit turn grants — a child writes its
// parent's buffer only after the parent deposited a kReduceAck token for
// it — which also provides the back-pressure the chain pipeline got from
// its per-send ack. Chunked at kReduceBufBytes like the chain version; the
// scratch block layout is unchanged.
void reduce_tree(
    Context& ctx, void* target, const void* source, std::size_t count,
    std::size_t elem_size, const ActiveSet& set,
    const std::function<void(void*, const void*, std::size_t)>& combine) {
  const int idx = set.index_of(ctx.pe());
  const std::vector<int> order = tree_order(ctx, set, /*root_idx=*/0);
  const int pos = tree_pos(order, idx);
  const int parent = pos == 0 ? -1 : order[static_cast<std::size_t>((pos - 1) / 2)];
  const std::vector<int> kids = tree_children(order, pos);
  auto* src_bytes = static_cast<const std::byte*>(source);
  const std::size_t elems_per_chunk =
      CollectiveScratch::kReduceBufBytes / elem_size;
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  std::vector<std::byte> acc, in;

  for (std::size_t base = 0; base < count; base += elems_per_chunk) {
    const std::size_t n = std::min(elems_per_chunk, count - base);
    const std::size_t bytes = n * elem_size;
    const std::size_t byte_off = base * elem_size;
    acc.assign(src_bytes + byte_off, src_bytes + byte_off + bytes);

    // Fold the subtrees in child order: grant the turn, await the partial.
    for (const int k : kids) {
      add_token(ctx, set.member(k), CollectiveScratch::kReduceAck);
      wait_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      in.resize(bytes);
      ctx.heap().read(CollectiveScratch::kReduceBuf,
                      std::span<std::byte>(in.data(), bytes));
      combine(acc.data(), in.data(), n);
    }

    if (parent >= 0) {
      // Await our turn, deliver the subtree partial upward.
      wait_tokens(ctx, CollectiveScratch::kReduceAck, 1);
      consume_tokens(ctx, CollectiveScratch::kReduceAck, 1);
      put_bytes(ctx, CollectiveScratch::kReduceBuf, acc.data(), bytes,
                set.member(parent));
      ctx.quiet();
      add_token(ctx, set.member(parent), CollectiveScratch::kReduceFlag);
      // The result relays down into target.
      wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    } else {
      ctx.heap().write(target_off + byte_off,
                       std::span<const std::byte>(acc.data(), bytes));
    }
    const std::byte* result =
        parent >= 0 ? static_cast<const std::byte*>(target) + byte_off
                    : acc.data();
    if (!kids.empty()) {
      for (const int k : kids) {
        put_bytes(ctx, target_off + byte_off, result, bytes, set.member(k));
      }
      ctx.quiet();
      for (const int k : kids) {
        add_token(ctx, set.member(k), CollectiveScratch::kBcastFlag);
      }
    }
  }
  // Exit barrier: see broadcast().
  barrier_set(ctx, set);
}

}  // namespace

void reduce(Context& ctx, void* target, const void* source, std::size_t count,
            std::size_t elem_size, const ActiveSet& set,
            const std::function<void(void*, const void*, std::size_t)>& combine) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("reduce: calling PE not in active set");
  }
  if (elem_size == 0 || elem_size > CollectiveScratch::kReduceBufBytes) {
    throw std::invalid_argument("reduce: unsupported element size");
  }
  auto* src_bytes = static_cast<const std::byte*>(source);
  auto* dst_bytes = static_cast<std::byte*>(target);
  if (set.size == 1) {
    std::memmove(dst_bytes, src_bytes, count * elem_size);
    return;
  }
  if (use_tree_collectives(ctx)) {
    reduce_tree(ctx, target, source, count, elem_size, set, combine);
    return;
  }
  const int m = set.size;
  const std::size_t elems_per_chunk =
      CollectiveScratch::kReduceBufBytes / elem_size;
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  std::vector<std::byte> tmp;

  // Pipeline: member 0 seeds each chunk into member 1's reduce buffer;
  // member k folds its contribution in and forwards; the last member
  // distributes the result. kReduceAck tokens flow backwards so a buffer
  // is never overwritten before its owner copied it out; every send waits
  // for its own ack, so no residual tokens survive the call.
  auto send_chunk = [&](const std::byte* data, std::size_t bytes, int to) {
    put_bytes(ctx, CollectiveScratch::kReduceBuf, data, bytes,
              set.member(to));
    ctx.quiet();
    add_token(ctx, set.member(to), CollectiveScratch::kReduceFlag);
    wait_tokens(ctx, CollectiveScratch::kReduceAck, 1);
    consume_tokens(ctx, CollectiveScratch::kReduceAck, 1);
  };

  for (std::size_t base = 0; base < count; base += elems_per_chunk) {
    const std::size_t n = std::min(elems_per_chunk, count - base);
    const std::size_t bytes = n * elem_size;
    const std::size_t byte_off = base * elem_size;

    if (idx == 0) {
      send_chunk(src_bytes + byte_off, bytes, 1);
    } else {
      wait_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kReduceFlag, 1);
      tmp.resize(bytes);
      ctx.heap().read(CollectiveScratch::kReduceBuf,
                      std::span<std::byte>(tmp.data(), bytes));
      // Buffer copied out: let the upstream member reuse it.
      add_token(ctx, set.member(idx - 1), CollectiveScratch::kReduceAck);
      combine(tmp.data(), src_bytes + byte_off, n);
      if (idx < m - 1) {
        send_chunk(tmp.data(), bytes, idx + 1);
      } else {
        // Last member owns the full result for this chunk.
        ctx.heap().write(target_off + byte_off,
                         std::span<const std::byte>(tmp.data(), bytes));
        for (int i = 0; i < m - 1; ++i) {
          put_bytes(ctx, target_off + byte_off, tmp.data(), bytes,
                    set.member(i));
        }
        ctx.quiet();
        for (int i = 0; i < m - 1; ++i) {
          add_token(ctx, set.member(i), CollectiveScratch::kBcastFlag);
        }
      }
    }
    if (idx != m - 1) {
      wait_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
      consume_tokens(ctx, CollectiveScratch::kBcastFlag, 1);
    }
  }
  // Exit barrier: see broadcast().
  barrier_set(ctx, set);
}

// ---- Collect / fcollect ----------------------------------------------------------

void fcollect(Context& ctx, void* target, const void* source,
              std::size_t nbytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("fcollect: calling PE not in active set");
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  const std::uint64_t my_off = static_cast<std::uint64_t>(idx) * nbytes;
  for (int i = 0; i < set.size; ++i) {
    const int pe = set.member(i);
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + my_off,
                       std::span<const std::byte>(
                           static_cast<const std::byte*>(source), nbytes));
    } else {
      put_bytes(ctx, target_off + my_off, source, nbytes, pe);
    }
  }
  barrier_set(ctx, set);
}

void collect(Context& ctx, void* target, const void* source,
             std::size_t nbytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("collect: calling PE not in active set");
  }
  // Cursor chain: member k learns the byte offset of its block from k-1.
  std::uint64_t my_off = 0;
  if (idx > 0) {
    wait_tokens(ctx, CollectiveScratch::kCursorFlag, 1);
    consume_tokens(ctx, CollectiveScratch::kCursorFlag, 1);
    my_off = static_cast<std::uint64_t>(
        read_local_long(ctx, CollectiveScratch::kCursorValue));
  }
  if (idx < set.size - 1) {
    const long next_off = static_cast<long>(my_off + nbytes);
    put_bytes(ctx, CollectiveScratch::kCursorValue, &next_off,
              sizeof next_off, set.member(idx + 1));
    ctx.quiet();
    add_token(ctx, set.member(idx + 1), CollectiveScratch::kCursorFlag);
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  for (int i = 0; i < set.size; ++i) {
    const int pe = set.member(i);
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + my_off,
                       std::span<const std::byte>(
                           static_cast<const std::byte*>(source), nbytes));
    } else {
      put_bytes(ctx, target_off + my_off, source, nbytes, pe);
    }
  }
  barrier_set(ctx, set);
}

void alltoall(Context& ctx, void* target, const void* source,
              std::size_t block_bytes, const ActiveSet& set) {
  set.validate(ctx.npes());
  const int idx = set.index_of(ctx.pe());
  if (idx < 0) {
    throw std::invalid_argument("alltoall: calling PE not in active set");
  }
  const std::uint64_t target_off = ctx.symmetric_offset(target);
  auto* src_bytes = static_cast<const std::byte*>(source);
  const std::uint64_t slot_off =
      static_cast<std::uint64_t>(idx) * block_bytes;
  for (int j = 0; j < set.size; ++j) {
    const int pe = set.member(j);
    const std::byte* block = src_bytes + static_cast<std::size_t>(j) * block_bytes;
    if (pe == ctx.pe()) {
      ctx.heap().write(target_off + slot_off,
                       std::span<const std::byte>(block, block_bytes));
    } else {
      put_bytes(ctx, target_off + slot_off, block, block_bytes, pe);
    }
  }
  barrier_set(ctx, set);
}

// ---- Locks -------------------------------------------------------------------------

namespace {
constexpr sim::Dur kLockBackoff = sim::usec(100);
}

void set_lock(Context& ctx, long* lock) {
  const std::uint64_t off = ctx.symmetric_offset(lock);
  const std::uint64_t token = static_cast<std::uint64_t>(ctx.pe()) + 1;
  for (;;) {
    const std::uint64_t old =
        ctx.chan().atomic(AtomicOp::kCompareSwap, off, 0, 8,
                          /*desired=*/token, /*expected=*/0);
    if (old == 0) return;
    ctx.chan().yield(kLockBackoff);
  }
}

int test_lock(Context& ctx, long* lock) {
  const std::uint64_t off = ctx.symmetric_offset(lock);
  const std::uint64_t token = static_cast<std::uint64_t>(ctx.pe()) + 1;
  const std::uint64_t old =
      ctx.chan().atomic(AtomicOp::kCompareSwap, off, 0, 8, token, 0);
  return old == 0 ? 0 : 1;
}

void clear_lock(Context& ctx, long* lock) {
  ctx.quiet();  // writes under the lock must be visible before release
  const std::uint64_t off = ctx.symmetric_offset(lock);
  ctx.chan().atomic(AtomicOp::kSet, off, 0, 8, 0, 0);
}

}  // namespace ntbshmem::shmem
