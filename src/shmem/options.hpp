// Runtime configuration for the OpenSHMEM-over-NTB library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "backend/kind.hpp"
#include "common/timing_params.hpp"
#include "common/units.hpp"
#include "fabric/ring.hpp"
#include "sim/fault.hpp"

namespace ntbshmem::shmem {

// How bulk data crosses the NTB window (the paper's §IV comparison).
enum class DataPath : int {
  kDma,     // NTB block-DMA engine ("RDMA" in the paper)
  kMemcpy,  // CPU stores through the mapped window ("memcpy")
};

// Barrier/quiet completion discipline.
//
// kLocalDma reproduces the paper's prototype: the barrier only checks that
// locally issued DMA has completed, so a multi-hop Put may still be in
// flight in an intermediate host's bypass buffer when the barrier releases
// (the paper's Fig. 10 latencies are only achievable this way). kFullDelivery
// is the spec-correct discipline: quiet/barrier wait for end-to-end delivery
// acknowledgements of every outstanding remote write.
enum class CompletionMode : int {
  kFullDelivery,  // default: correct OpenSHMEM semantics
  kLocalDma,      // paper-prototype mode, used by the Fig. 10 bench
};

// Reliable-delivery layer of the transport (opt-in; off reproduces the
// paper's fail-fast protocol bit-identically). With reliability enabled
// every frame carries a per-channel sequence number (FrameHeader::flags) and
// a 32-bit header checksum (ScratchPad reg 7); the receiver is go-back-N —
// it accepts only the next expected sequence, re-acks duplicates, NAKs
// checksum rejects and drops out-of-order arrivals — and the sender
// retransmits on NAK or ack timeout with exponential backoff.
struct ReliabilityParams {
  bool enabled = false;
  // Virtual time from doorbell ring to first retransmit. Must comfortably
  // exceed the worst-case ack round trip (interrupt delivery + service-wake
  // + register reads + ack write) or the link sees spurious — harmless but
  // noisy — retransmits.
  DurationNs ack_timeout = 5'000'000;  // 5 ms
  double backoff = 2.0;                // timeout multiplier per retry
  int max_retries = 10;                // then the channel throws (unrecoverable)
  int dma_retries = 4;                 // descriptor-error retries per segment
};

// Transport pipelining knobs (the §III data-path optimisations that go
// beyond the paper's prototype). The default-constructed block is
// paper-faithful — one ScratchPad frame in flight per direction, serial
// per-segment LUT setup, full store-and-forward at every hop — so every
// figure bench reproduces the paper unless a bench opts in explicitly.
struct TransportTuning {
  // ScratchPad frame credits per TX direction. 1 reproduces the paper's
  // one-frame-in-flight handshake; N>1 models a double-buffered ScratchPad
  // bank (the receiving adapter latches the header bank per doorbell), so a
  // second frame's header/payload staging overlaps the previous frame's
  // in-flight ACK. The bypass staging buffer is partitioned into N slots,
  // one owned per credit, so in-flight payloads never collide.
  int tx_credits = 1;
  // Overlap segment i+1's LUT/descriptor setup with segment i's DMA in the
  // application fast path (window_write): models descriptor prefetch in the
  // NTB DMA engine. The first segment still pays the full serial setup.
  bool overlap_segment_setup = false;
  // Cut-through forwarding: an intermediate host begins forwarding a
  // chunked multi-hop message as soon as its first chunk (which carries the
  // network header) is reassembled, instead of store-and-forwarding the
  // whole message at every hop.
  bool cut_through_forwarding = false;

  // Topology-aware collectives: barrier runs as a token tree over the
  // routing graph instead of the paper's doorbell ring-walk, and
  // broadcast/reduce relay through a hop-ordered tree instead of linear
  // root-to-member loops. Opt-in on ring-like topologies (the default off
  // keeps the paper's protocol bit-identical); non-ring topologies always
  // use the tree barrier because the doorbell circulation assumes a ring.
  bool topology_collectives = false;

  // Retry/retransmit layer; orthogonal to the pipelining knobs (it is a
  // robustness feature, not a performance one, so all_on() leaves it off —
  // fault workloads opt in explicitly via reliable()).
  ReliabilityParams reliability;

  // TEST-ONLY planted bug for the model checker's self-check (tools/mck
  // --seed-bug): deliver_put acknowledges and notifies BEFORE the heap
  // write lands (deferred to a same-timestamp callback), violating the
  // write-before-notify guarantee. Never set outside mck's acceptance
  // gate; every shipped configuration leaves it false.
  bool bug_ack_before_write = false;

  bool pipelined() const {
    return tx_credits > 1 || overlap_segment_setup || cut_through_forwarding;
  }

  static TransportTuning paper() { return TransportTuning{}; }
  static TransportTuning all_on(int credits = 4) {
    TransportTuning t;
    t.tx_credits = credits;
    t.overlap_segment_setup = true;
    t.cut_through_forwarding = true;
    return t;
  }
  // `base` with the reliable-delivery layer switched on.
  static TransportTuning reliable(TransportTuning base) {
    base.reliability.enabled = true;
    return base;
  }
  static TransportTuning reliable() { return reliable(TransportTuning{}); }
};

// Observability layer (src/obs): typed span tracing and per-layer metrics.
// The runtime always owns an obs::Hub and attaches it to the engine, so the
// metric counters are registered (an increment is one pointer-deref add);
// span/instant/counter-sample *recording* happens only when spans_enabled.
struct ObsOptions {
  bool spans_enabled = false;
  // Per-track record cap for long soak runs (oldest records evicted,
  // tracked per track as `dropped`); 0 keeps every record.
  std::size_t ring_capacity = 0;
  // Causal cross-hop tracing (obs::CausalRecorder): op-rooted span trees
  // linked across hosts/ports/retransmits, exported by
  // Runtime::write_causal_trace as ntbshmem-trace-v1 and as Perfetto flow
  // arrows on the span timeline. Off by default: the TraceCtx sidecar adds
  // no wire bytes and no virtual time either way, but recording allocates.
  bool causal_enabled = false;
  // Per-host flight-recorder ring size (always on; rounded up to a power
  // of two). 0 picks the 512-record default.
  std::size_t flight_capacity = 512;
  // Per-link utilization sampling window for the busy-ns counter series
  // (active while spans or causal recording are enabled; 0 disables).
  sim::Dur link_util_window = 1'000'000;  // 1 ms
};

struct RuntimeOptions {
  // Data-path backend: the simulated NTB fabric (kSim) or real fork()ed
  // processes over a POSIX shm segment (kShm). kAuto consults the
  // NTBSHMEM_BACKEND environment variable and falls back to kSim, so any
  // binary can be switched without a rebuild (DESIGN.md §4j). All fabric,
  // timing, fault and tuning knobs below apply to the sim backend only.
  backend::Kind backend = backend::Kind::kAuto;
  int npes = 3;  // total PEs
  // PEs per host (block mapping: PE p lives on host p / pes_per_host). The
  // paper's prototype is 1:1; higher values are the multi-tenant extension:
  // co-resident PEs share the host's NTB adapters and service threads and
  // communicate through a local shared-memory path.
  int pes_per_host = 1;
  TimingParams timing;
  // Fabric wiring diagram (default: the paper's ring). Non-ring topologies
  // require a compatible routing mode — kShortest works everywhere,
  // kDimensionOrder only on kTorus2D, kRightOnly only on ring-like
  // fabrics (validated at Runtime construction).
  fabric::TopologySpec topology;
  fabric::RoutingMode routing = fabric::RoutingMode::kRightOnly;
  DataPath data_path = DataPath::kDma;
  CompletionMode completion = CompletionMode::kFullDelivery;
  TransportTuning tuning;  // paper-faithful by default

  // Symmetric heap: fixed-size chunks allocated on demand and virtually
  // concatenated (paper Fig. 3).
  std::uint64_t symheap_chunk_bytes = 4_MiB;
  std::uint64_t symheap_max_bytes = 32_MiB;

  // Per-host arena backing heap chunks, staging areas and scratch space.
  std::uint64_t host_memory_bytes = 96ull << 20;

  // Per-link DMA-rate spread (see FabricConfig); empty -> timing default.
  std::vector<double> link_dma_rates_Bps = {3.0e9, 2.6e9, 2.8e9};

  // Ports wait for link retraining instead of failing fast — lets a
  // workload survive transient cable flaps (fault-injection tests).
  bool resilient_links = false;

  // Fault injection: probabilities/schedules consulted by every layer's
  // injection sites (sim::FaultPlan). The runtime always constructs and
  // attaches a plan — an all-zero spec injects nothing and is exactly
  // timing-neutral — so targeted tests can arm one-shot faults on
  // Runtime::faults() without any configuration. Barrier doorbell bits are
  // excluded from drop injection (reliable control path; DESIGN.md §4b).
  sim::FaultSpec faults;
  std::uint64_t fault_seed = 0x5eedf00d;

  // Record protocol events (frames, barrier signals, operations) into
  // Runtime::trace() — used by tests that assert protocol ordering and by
  // debugging sessions. Off by default: benchmarks must not pay for it.
  bool trace_enabled = false;

  // Typed span tracing + metrics (Runtime::obs(), exported via obs/export).
  ObsOptions obs;

  // Schedule auditing (sim/audit.hpp). `schedule_digest` folds every engine
  // dispatch into an FNV accumulator readable via
  // engine().schedule_digest(); `schedule_tiebreak_seed != 0` permutes
  // same-timestamp dispatch order with a seeded bijection — a debug mode
  // that must leave SHMEM-visible results (heap contents, barrier counts)
  // unchanged while it scrambles the schedule (DESIGN.md §4d). Both are
  // applied before any service process spawns, so they cover the whole run.
  bool schedule_digest = false;
  std::uint64_t schedule_tiebreak_seed = 0;

  // Routing-table tie-break seed (see fabric::RoutingTable::build): 0
  // keeps the legacy lowest-port preference; any other value perturbs
  // which of several equally short egress ports wins, deterministically.
  std::uint64_t route_tiebreak_seed = 0;

  int num_hosts() const {
    return pes_per_host > 0 ? npes / pes_per_host : 0;
  }

  fabric::FabricConfig fabric_config() const {
    fabric::FabricConfig cfg;
    cfg.num_hosts = num_hosts();
    cfg.topology = topology;
    cfg.timing = timing;
    cfg.host_memory_bytes = host_memory_bytes;
    cfg.link_dma_rates_Bps = link_dma_rates_Bps;
    cfg.resilient_links = resilient_links;
    cfg.route_tiebreak_seed = route_tiebreak_seed;
    return cfg;
  }
};

}  // namespace ntbshmem::shmem
