// Runtime configuration for the OpenSHMEM-over-NTB library.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timing_params.hpp"
#include "common/units.hpp"
#include "fabric/ring.hpp"

namespace ntbshmem::shmem {

// How bulk data crosses the NTB window (the paper's §IV comparison).
enum class DataPath : int {
  kDma,     // NTB block-DMA engine ("RDMA" in the paper)
  kMemcpy,  // CPU stores through the mapped window ("memcpy")
};

// Barrier/quiet completion discipline.
//
// kLocalDma reproduces the paper's prototype: the barrier only checks that
// locally issued DMA has completed, so a multi-hop Put may still be in
// flight in an intermediate host's bypass buffer when the barrier releases
// (the paper's Fig. 10 latencies are only achievable this way). kFullDelivery
// is the spec-correct discipline: quiet/barrier wait for end-to-end delivery
// acknowledgements of every outstanding remote write.
enum class CompletionMode : int {
  kFullDelivery,  // default: correct OpenSHMEM semantics
  kLocalDma,      // paper-prototype mode, used by the Fig. 10 bench
};

struct RuntimeOptions {
  int npes = 3;  // total PEs
  // PEs per host (block mapping: PE p lives on host p / pes_per_host). The
  // paper's prototype is 1:1; higher values are the multi-tenant extension:
  // co-resident PEs share the host's NTB adapters and service threads and
  // communicate through a local shared-memory path.
  int pes_per_host = 1;
  TimingParams timing;
  fabric::RoutingMode routing = fabric::RoutingMode::kRightOnly;
  DataPath data_path = DataPath::kDma;
  CompletionMode completion = CompletionMode::kFullDelivery;

  // Symmetric heap: fixed-size chunks allocated on demand and virtually
  // concatenated (paper Fig. 3).
  std::uint64_t symheap_chunk_bytes = 4_MiB;
  std::uint64_t symheap_max_bytes = 32_MiB;

  // Per-host arena backing heap chunks, staging areas and scratch space.
  std::uint64_t host_memory_bytes = 96ull << 20;

  // Per-link DMA-rate spread (see FabricConfig); empty -> timing default.
  std::vector<double> link_dma_rates_Bps = {3.0e9, 2.6e9, 2.8e9};

  // Ports wait for link retraining instead of failing fast — lets a
  // workload survive transient cable flaps (fault-injection tests).
  bool resilient_links = false;

  // Record protocol events (frames, barrier signals, operations) into
  // Runtime::trace() — used by tests that assert protocol ordering and by
  // debugging sessions. Off by default: benchmarks must not pay for it.
  bool trace_enabled = false;

  int num_hosts() const {
    return pes_per_host > 0 ? npes / pes_per_host : 0;
  }

  fabric::FabricConfig fabric_config() const {
    fabric::FabricConfig cfg;
    cfg.num_hosts = num_hosts();
    cfg.timing = timing;
    cfg.host_memory_bytes = host_memory_bytes;
    cfg.link_dma_rates_Bps = link_dma_rates_Bps;
    cfg.resilient_links = resilient_links;
    return cfg;
  }
};

}  // namespace ntbshmem::shmem
