#include "shmem/message.hpp"

namespace ntbshmem::shmem {

std::array<std::uint32_t, 7> FrameHeader::pack() const {
  std::array<std::uint32_t, 7> regs{};
  regs[0] = static_cast<std::uint32_t>(kind) |
            (static_cast<std::uint32_t>(origin_pe) << 8) |
            (static_cast<std::uint32_t>(target_pe) << 16) |
            (static_cast<std::uint32_t>(flags) << 24);
  regs[1] = id;
  regs[2] = static_cast<std::uint32_t>(a & 0xffffffffu);
  regs[3] = static_cast<std::uint32_t>(a >> 32);
  regs[4] = b;
  regs[5] = c;
  regs[6] = d;
  return regs;
}

FrameHeader FrameHeader::unpack(const std::array<std::uint32_t, 7>& regs) {
  FrameHeader h;
  h.kind = static_cast<FrameKind>(regs[0] & 0xff);
  h.origin_pe = static_cast<std::uint8_t>((regs[0] >> 8) & 0xff);
  h.target_pe = static_cast<std::uint8_t>((regs[0] >> 16) & 0xff);
  h.flags = static_cast<std::uint8_t>((regs[0] >> 24) & 0xff);
  h.id = regs[1];
  h.a = static_cast<std::uint64_t>(regs[2]) |
        (static_cast<std::uint64_t>(regs[3]) << 32);
  h.b = regs[4];
  h.c = regs[5];
  h.d = regs[6];
  return h;
}

std::uint32_t frame_checksum(const std::array<std::uint32_t, 7>& regs) {
  std::uint32_t h = 0x811c9dc5u;
  for (const std::uint32_t reg : regs) {
    for (int shift = 0; shift < 32; shift += 8) {
      h = (h ^ ((reg >> shift) & 0xffu)) * 0x01000193u;
    }
  }
  return h;
}

void write_message_header(std::span<std::byte> dst, const MessageHeader& h) {
  if (dst.size() < kMessageHeaderBytes) {
    throw std::invalid_argument("message header destination too small");
  }
  std::memset(dst.data(), 0, kMessageHeaderBytes);
  std::memcpy(dst.data(), &h, sizeof(MessageHeader));
}

MessageHeader read_message_header(std::span<const std::byte> src) {
  if (src.size() < kMessageHeaderBytes) {
    throw std::invalid_argument("message header source too small");
  }
  MessageHeader h;
  std::memcpy(&h, src.data(), sizeof(MessageHeader));
  return h;
}

}  // namespace ntbshmem::shmem
