#include "workload/scenarios.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "backend/backend.hpp"
#include "obs/metrics.hpp"
#include "shmem/api.hpp"
#include "shmem/teams.hpp"
#include "workload/rng.hpp"

namespace ntbshmem::workload {
namespace {

using namespace ntbshmem::shmem;

// POD wire image of one PE's ScenarioReport counters, published through the
// backend's pe_scratch mailbox at the end of each PE body. Under the shm
// backend the PE bodies run in forked processes, so by-reference lambda
// captures are copy-on-write ghosts — the mailbox is the only road a PE's
// results travel back on, and using it unconditionally keeps the sim and
// shm paths byte-for-byte the same code.
struct ReportWire {
  std::uint64_t requests_issued;
  std::uint64_t requests_completed;
  std::uint64_t bytes_requested;
  std::uint64_t bytes_transferred;
  std::uint64_t verify_errors;
  std::uint64_t signals_sent;
  std::uint64_t signals_received;
  double checksum;
};
static_assert(std::is_trivially_copyable_v<ReportWire>,
              "ReportWire crosses a fork boundary as raw bytes");
static_assert(sizeof(ReportWire) <= backend::kPeScratchBytes,
              "ReportWire must fit the per-PE scratch mailbox");

void publish_report(Runtime& rt, int pe, const ScenarioReport& mine) {
  const ReportWire w{mine.requests_issued,   mine.requests_completed,
                     mine.bytes_requested,   mine.bytes_transferred,
                     mine.verify_errors,     mine.signals_sent,
                     mine.signals_received,  mine.checksum};
  std::memcpy(rt.pe_scratch(pe).data(), &w, sizeof(w));
}

// Sums the per-PE wire images into the scenario total. When
// `compare_checksums`, every PE's checksum must equal PE 0's (the scenarios
// compute it via a world reduction, so divergence is a verification error).
ScenarioReport collect_reports(Runtime& rt, const std::string& name,
                               sim::Dur elapsed, bool compare_checksums) {
  ScenarioReport total;
  total.scenario = name;
  for (int pe = 0; pe < rt.npes(); ++pe) {
    ReportWire w;
    std::memcpy(&w, rt.pe_scratch(pe).data(), sizeof(w));
    total.requests_issued += w.requests_issued;
    total.requests_completed += w.requests_completed;
    total.bytes_requested += w.bytes_requested;
    total.bytes_transferred += w.bytes_transferred;
    total.verify_errors += w.verify_errors;
    total.signals_sent += w.signals_sent;
    total.signals_received += w.signals_received;
    if (pe == 0) {
      total.checksum = w.checksum;
    } else if (compare_checksums && w.checksum != total.checksum) {
      ++total.verify_errors;
    }
  }
  total.elapsed_ns = static_cast<long long>(elapsed);
  return total;
}

// Value byte of key `key` at offset `i`: a pure function of the key, so
// every writer of a key writes identical bytes (any interleaving leaves the
// heap verifiable) and every reader can check its payload inline.
std::uint8_t kv_value_byte(std::uint64_t key, std::uint64_t i) {
  return static_cast<std::uint8_t>((key * 131 + i * 17 + 7) & 0xff);
}

// Target-PE picker: Zipf or uniform over the npes-1 other PEs. The issuing
// PE is collapsed out of the rank space (rank >= me shifts up by one), so
// rank 0 — the Zipf hot spot — is PE 0 for everyone except PE 0 itself.
class TargetPicker {
 public:
  TargetPicker(const TrafficSpec& spec, std::uint64_t seed,
               const std::string& key, int me, int npes)
      : me_(me),
        others_(static_cast<std::uint64_t>(npes - 1)),
        uniform_(spec.targets == TargetDist::kUniform),
        stream_(seed, key),
        zipf_(static_cast<std::size_t>(npes - 1),
              spec.targets == TargetDist::kZipf ? spec.zipf_theta : 0.0) {}

  int pick() {
    const auto rank =
        static_cast<int>(uniform_ ? stream_.next_below(others_)
                                  : static_cast<std::uint64_t>(
                                        zipf_.sample(stream_)));
    return rank < me_ ? rank : rank + 1;
  }

 private:
  int me_;
  std::uint64_t others_;
  bool uniform_;
  Stream stream_;
  ZipfSampler zipf_;
};

// Widest rows x cols factorisation of n with rows <= cols (rows may be 1).
void grid_shape(int n, int* rows, int* cols) {
  int r = static_cast<int>(std::sqrt(static_cast<double>(n)));
  for (; r > 1; --r) {
    if (n % r == 0) break;
  }
  *rows = r < 1 ? 1 : r;
  *cols = n / *rows;
}

}  // namespace

ScenarioReport run_kv(shmem::Runtime& rt, const KvSpec& spec,
                      std::uint64_t seed) {
  const int npes = rt.npes();
  if (npes < 2) {
    throw std::invalid_argument("run_kv: needs at least 2 PEs");
  }
  const auto slots = static_cast<std::uint64_t>(spec.slots_per_pe);
  const std::uint64_t vbytes = spec.traffic.max_size();
  if (slots == 0 || vbytes == 0) {
    throw std::invalid_argument("run_kv: empty shard or size distribution");
  }

  obs::MetricsRegistry& reg = rt.obs().metrics;
  obs::Histogram* h_total = reg.histogram("workload." + spec.name + ".latency_ns");
  obs::Histogram* h_get = reg.histogram("workload." + spec.name + ".get.latency_ns");
  obs::Histogram* h_put = reg.histogram("workload." + spec.name + ".put.latency_ns");
  obs::Histogram* h_nbi =
      reg.histogram("workload." + spec.name + ".put_nbi.latency_ns");
  obs::Histogram* h_sig =
      reg.histogram("workload." + spec.name + ".put_signal.latency_ns");

  const TrafficSpec& tr = spec.traffic;
  std::vector<double> op_weights, size_weights;
  for (const OpMixEntry& e : tr.mix) op_weights.push_back(e.weight);
  for (const SizePoint& p : tr.sizes) size_weights.push_back(p.weight);
  const DiscreteSampler op_sampler(op_weights);
  const DiscreteSampler size_sampler(size_weights);

  const sim::Dur elapsed = rt.run([&] {
    shmem_init();
    const int me = shmem_my_pe();
    const std::string pe_tag = ".pe" + std::to_string(me);
    Runtime& wrt = Runtime::current()->runtime();
    ScenarioReport mine;

    auto* shard = static_cast<std::byte*>(shmem_malloc(slots * vbytes));
    auto* sigs = static_cast<std::uint64_t*>(
        shmem_calloc(static_cast<std::size_t>(npes), sizeof(std::uint64_t)));

    // Initialise every slot to its key pattern: writes are then idempotent
    // and the final heap is byte-checkable regardless of write interleaving.
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(me) * slots + slot;
      for (std::uint64_t i = 0; i < vbytes; ++i) {
        shard[slot * vbytes + i] =
            static_cast<std::byte>(kv_value_byte(key, i));
      }
    }
    shmem_barrier_all();

    TargetPicker targets(tr, seed, spec.name + ".target" + pe_tag, me, npes);
    Stream op_stream(seed, spec.name + ".op" + pe_tag);
    Stream size_stream(seed, spec.name + ".size" + pe_tag);
    Stream slot_stream(seed, spec.name + ".slot" + pe_tag);
    ArrivalClock arrivals(tr, seed, spec.name + ".arrival" + pe_tag,
                          wrt.clock_now());

    shmem_ctx_t ctx = SHMEM_CTX_INVALID;
    shmem_ctx_create(SHMEM_CTX_PRIVATE, &ctx);

    // In-flight put_nbi batch: issue times plus per-request staging buffers
    // (the source of a put_nbi must stay live until the ctx_quiet).
    struct Pending {
      sim::Time issued;
      std::uint64_t bytes;
    };
    std::vector<Pending> pending;
    std::vector<std::vector<std::byte>> staging(
        static_cast<std::size_t>(tr.nbi_batch > 0 ? tr.nbi_batch : 1));
    const auto flush = [&] {
      if (pending.empty()) return;
      shmem_ctx_quiet(ctx);
      for (const Pending& p : pending) {
        const auto lat =
            static_cast<std::uint64_t>(wrt.clock_now() - p.issued);
        h_total->record(lat);
        h_nbi->record(lat);
        ++mine.requests_completed;
        mine.bytes_transferred += p.bytes;
      }
      pending.clear();
    };

    std::vector<std::byte> scratch(vbytes);
    for (std::uint64_t k = 0; k < tr.requests_per_pe; ++k) {
      const sim::Time scheduled = arrivals.next(wrt);
      const int target = targets.pick();
      const std::uint64_t slot = slot_stream.next_below(slots);
      const std::uint64_t key =
          static_cast<std::uint64_t>(target) * slots + slot;
      const OpKind op = tr.mix[op_sampler.sample(op_stream)].op;
      const std::uint64_t size = tr.sizes[size_sampler.sample(size_stream)].bytes;
      std::byte* remote = shard + slot * vbytes;

      ++mine.requests_issued;
      mine.bytes_requested += size;

      const auto done = [&](obs::Histogram* h_op) {
        const auto lat =
            static_cast<std::uint64_t>(wrt.clock_now() - scheduled);
        h_total->record(lat);
        h_op->record(lat);
        ++mine.requests_completed;
        mine.bytes_transferred += size;
      };

      switch (op) {
        case OpKind::kGet: {
          shmem_getmem(scratch.data(), remote, size, target);
          for (std::uint64_t i = 0; i < size; ++i) {
            if (scratch[i] != static_cast<std::byte>(kv_value_byte(key, i))) {
              ++mine.verify_errors;
              break;
            }
          }
          done(h_get);
          break;
        }
        case OpKind::kPut: {
          for (std::uint64_t i = 0; i < size; ++i) {
            scratch[i] = static_cast<std::byte>(kv_value_byte(key, i));
          }
          shmem_putmem(remote, scratch.data(), size, target);
          done(h_put);
          break;
        }
        case OpKind::kCtxPutNbi: {
          std::vector<std::byte>& src = staging[pending.size()];
          src.resize(size);
          for (std::uint64_t i = 0; i < size; ++i) {
            src[i] = static_cast<std::byte>(kv_value_byte(key, i));
          }
          shmem_ctx_putmem_nbi(ctx, remote, src.data(), size, target);
          pending.push_back(Pending{scheduled, size});
          if (pending.size() >= staging.size()) flush();
          break;
        }
        case OpKind::kPutSignal: {
          for (std::uint64_t i = 0; i < size; ++i) {
            scratch[i] = static_cast<std::byte>(kv_value_byte(key, i));
          }
          shmem_putmem_signal(remote, scratch.data(), size,
                              &sigs[static_cast<std::size_t>(me)], 1,
                              SHMEM_SIGNAL_ADD, target);
          ++mine.signals_sent;
          done(h_sig);
          break;
        }
      }
    }
    flush();
    shmem_ctx_destroy(ctx);
    shmem_quiet();
    shmem_barrier_all();

    // Conservation: every put-with-signal that completed anywhere must have
    // landed in exactly one receiver's per-sender signal word.
    for (int j = 0; j < npes; ++j) {
      mine.signals_received += sigs[static_cast<std::size_t>(j)];
    }
    // Golden heap: every slot must still hold its key pattern byte-for-byte
    // (writes are idempotent by construction).
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(me) * slots + slot;
      for (std::uint64_t i = 0; i < vbytes; ++i) {
        if (shard[slot * vbytes + i] !=
            static_cast<std::byte>(kv_value_byte(key, i))) {
          ++mine.verify_errors;
          break;
        }
      }
    }
    shmem_barrier_all();
    shmem_free(sigs);
    shmem_free(shard);
    publish_report(wrt, me, mine);
    shmem_finalize();
  });

  return collect_reports(rt, spec.name, elapsed, /*compare_checksums=*/false);
}

ScenarioReport run_stencil(shmem::Runtime& rt, const StencilSpec& spec,
                           std::uint64_t seed) {
  const int npes = rt.npes();
  int rows = 0, cols = 0;
  grid_shape(npes, &rows, &cols);
  const int tr = spec.tile_rows, tc = spec.tile_cols;
  if (tr < 1 || tc < 1 || spec.iterations < 1) {
    throw std::invalid_argument("run_stencil: bad tile/iteration shape");
  }

  obs::Histogram* h_iter =
      rt.obs().metrics.histogram("workload." + spec.name + ".latency_ns");

  const bool vertical = rows > 1;   // exchange north/south halos
  const bool horizontal = cols > 1; // exchange east/west halos

  const sim::Dur elapsed = rt.run([&] {
    shmem_init();
    const int me = shmem_my_pe();
    Runtime& wrt = Runtime::current()->runtime();
    ScenarioReport mine;
    const int r = me / cols, c = me % cols;
    const int north = ((r - 1 + rows) % rows) * cols + c;
    const int south = ((r + 1) % rows) * cols + c;
    const int west = r * cols + (c - 1 + cols) % cols;
    const int east = r * cols + (c + 1) % cols;

    const auto utr = static_cast<std::size_t>(tr);
    const auto utc = static_cast<std::size_t>(tc);
    // Tiles with a ghost ring; symmetric halo inboxes.
    const std::size_t pitch = utc + 2;
    std::vector<double> tile_a((utr + 2) * pitch, 0.0);
    std::vector<double> tile_b((utr + 2) * pitch, 0.0);
    auto* north_in = static_cast<double*>(shmem_malloc(utc * sizeof(double)));
    auto* south_in = static_cast<double*>(shmem_malloc(utc * sizeof(double)));
    auto* west_in = static_cast<double*>(shmem_malloc(utr * sizeof(double)));
    auto* east_in = static_cast<double*>(shmem_malloc(utr * sizeof(double)));

    Stream init(seed, spec.name + ".init.pe" + std::to_string(me));
    auto at = [&](std::vector<double>& t, std::size_t i,
                  std::size_t j) -> double& { return t[i * pitch + j]; };
    for (std::size_t i = 1; i <= utr; ++i) {
      for (std::size_t j = 1; j <= utc; ++j) {
        at(tile_a, i, j) = init.next_unit();
      }
    }
    shmem_barrier_all();

    std::vector<double> top(utc), bottom(utc), left(utr), right(utr);
    std::vector<double>* cur = &tile_a;
    std::vector<double>* nxt = &tile_b;
    for (int it = 0; it < spec.iterations; ++it) {
      const sim::Time t0 = wrt.clock_now();
      // Pack and push halos (put_nbi batch completed by one quiet).
      if (vertical) {
        for (std::size_t j = 0; j < utc; ++j) {
          top[j] = at(*cur, 1, j + 1);
          bottom[j] = at(*cur, utr, j + 1);
        }
        shmem_putmem_nbi(south_in, top.data(), utc * sizeof(double), north);
        shmem_putmem_nbi(north_in, bottom.data(), utc * sizeof(double), south);
        mine.requests_issued += 2;
        mine.bytes_requested += 2 * utc * sizeof(double);
      }
      if (horizontal) {
        for (std::size_t i = 0; i < utr; ++i) {
          left[i] = at(*cur, i + 1, 1);
          right[i] = at(*cur, i + 1, utc);
        }
        shmem_putmem_nbi(east_in, left.data(), utr * sizeof(double), west);
        shmem_putmem_nbi(west_in, right.data(), utr * sizeof(double), east);
        mine.requests_issued += 2;
        mine.bytes_requested += 2 * utr * sizeof(double);
      }
      shmem_quiet();
      mine.requests_completed = mine.requests_issued;
      mine.bytes_transferred = mine.bytes_requested;
      shmem_barrier_all();

      // Fill ghosts from the inboxes (reflective when the grid is flat in
      // a dimension) and relax the interior.
      for (std::size_t j = 1; j <= utc; ++j) {
        at(*cur, 0, j) = vertical ? north_in[j - 1] : at(*cur, 1, j);
        at(*cur, utr + 1, j) = vertical ? south_in[j - 1] : at(*cur, utr, j);
      }
      for (std::size_t i = 1; i <= utr; ++i) {
        at(*cur, i, 0) = horizontal ? west_in[i - 1] : at(*cur, i, 1);
        at(*cur, i, utc + 1) = horizontal ? east_in[i - 1] : at(*cur, i, utc);
      }
      for (std::size_t i = 1; i <= utr; ++i) {
        for (std::size_t j = 1; j <= utc; ++j) {
          at(*nxt, i, j) =
              0.25 * (at(*cur, i - 1, j) + at(*cur, i + 1, j) +
                      at(*cur, i, j - 1) + at(*cur, i, j + 1));
        }
      }
      std::swap(cur, nxt);
      h_iter->record(static_cast<std::uint64_t>(wrt.clock_now() - t0));
      // Everyone must be done reading its inboxes before the next round of
      // puts may overwrite them.
      shmem_barrier_all();
    }

    // Global checksum: identical on every PE (world-team reduction).
    auto* local = static_cast<double*>(shmem_malloc(sizeof(double)));
    auto* global = static_cast<double*>(shmem_malloc(sizeof(double)));
    *local = 0.0;
    for (std::size_t i = 1; i <= utr; ++i) {
      for (std::size_t j = 1; j <= utc; ++j) *local += at(*cur, i, j);
    }
    shmem_double_sum_reduce(SHMEM_TEAM_WORLD, global, local, 1);
    mine.checksum = *global;
    if (!std::isfinite(*global)) ++mine.verify_errors;
    shmem_free(global);
    shmem_free(local);
    shmem_free(east_in);
    shmem_free(west_in);
    shmem_free(south_in);
    shmem_free(north_in);
    publish_report(wrt, me, mine);
    shmem_finalize();
  });

  return collect_reports(rt, spec.name, elapsed, /*compare_checksums=*/true);
}

ScenarioReport run_allreduce(shmem::Runtime& rt, const AllreduceSpec& spec,
                             std::uint64_t seed) {
  const int npes = rt.npes();
  const int groups = spec.groups;
  if (groups < 1 || npes % groups != 0) {
    throw std::invalid_argument(
        "run_allreduce: npes must be a multiple of groups");
  }
  const auto elems = static_cast<std::size_t>(spec.gradient_elems);
  if (elems == 0 || spec.steps < 1) {
    throw std::invalid_argument("run_allreduce: bad gradient/step shape");
  }

  obs::Histogram* h_step =
      rt.obs().metrics.histogram("workload." + spec.name + ".latency_ns");

  // Closed form of the global gradient sum: gradients are exact small
  // integers, so float addition is exact in any association order.
  double pe_term = 0.0;
  for (int p = 0; p < npes; ++p) pe_term += static_cast<double>(p % 8);

  const sim::Dur elapsed = rt.run([&] {
    shmem_init();
    const int me = shmem_my_pe();
    Runtime& wrt = Runtime::current()->runtime();
    ScenarioReport mine;
    const int g = me % groups;

    // Data-parallel group teams {g, g+groups, ...} and the leader team
    // {0..groups-1}; group team index 0 IS the group's leader, so the two
    // levels stitch together without translation tables.
    shmem_team_t group_team = SHMEM_TEAM_INVALID;
    shmem_team_t leader_team = SHMEM_TEAM_INVALID;
    for (int gi = 0; gi < groups; ++gi) {
      shmem_team_t t = SHMEM_TEAM_INVALID;
      shmem_team_split_strided(SHMEM_TEAM_WORLD, gi, groups, npes / groups,
                               nullptr, 0, &t);
      if (gi == g) group_team = t;
    }
    shmem_team_split_strided(SHMEM_TEAM_WORLD, 0, 1, groups, nullptr, 0,
                             &leader_team);

    auto* grad = static_cast<float*>(shmem_malloc(elems * sizeof(float)));
    auto* acc = static_cast<float*>(shmem_malloc(elems * sizeof(float)));
    auto* acc2 = static_cast<float*>(shmem_malloc(elems * sizeof(float)));
    auto* out = static_cast<float*>(shmem_malloc(elems * sizeof(float)));
    Stream compute(seed, spec.name + ".compute.pe" + std::to_string(me));
    shmem_barrier_all();

    for (int step = 0; step < spec.steps; ++step) {
      const sim::Time t0 = wrt.clock_now();
      // Backward-pass skew: seeded exponential compute time.
      wrt.clock_wait_for(
          static_cast<sim::Dur>(compute.next_exp(spec.compute_mean_ns)));
      for (std::size_t i = 0; i < elems; ++i) {
        grad[i] = static_cast<float>(static_cast<std::size_t>(me % 8) +
                                     (i % 16) +
                                     static_cast<std::size_t>(step % 4));
      }
      ++mine.requests_issued;
      mine.bytes_requested += elems * sizeof(float);

      // Level 1: reduce inside the data-parallel group.
      shmem_float_sum_reduce(group_team, acc, grad, elems);
      // Level 2: group leaders reduce across groups.
      if (me < groups) {
        shmem_float_sum_reduce(leader_team, acc2, acc, elems);
      }
      // Broadcast the global sum back down the group (root = leader).
      shmem_broadcastmem(group_team, out, acc2, elems * sizeof(float), 0);

      for (std::size_t i = 0; i < elems; ++i) {
        const double expect =
            pe_term + static_cast<double>(npes) *
                          static_cast<double>((i % 16) +
                                              (static_cast<std::size_t>(step) % 4));
        if (static_cast<double>(out[i]) != expect) {
          ++mine.verify_errors;
          break;
        }
      }
      ++mine.requests_completed;
      mine.bytes_transferred += elems * sizeof(float);
      h_step->record(static_cast<std::uint64_t>(wrt.clock_now() - t0));
    }

    double sum = 0.0;
    for (std::size_t i = 0; i < elems; ++i) sum += static_cast<double>(out[i]);
    mine.checksum = sum;

    shmem_barrier_all();
    shmem_free(out);
    shmem_free(acc2);
    shmem_free(acc);
    shmem_free(grad);
    // Destroy is collective over each team: members only.
    if (leader_team != SHMEM_TEAM_INVALID) shmem_team_destroy(leader_team);
    shmem_team_destroy(group_team);
    publish_report(wrt, me, mine);
    shmem_finalize();
  });

  return collect_reports(rt, spec.name, elapsed, /*compare_checksums=*/true);
}

}  // namespace ntbshmem::workload
