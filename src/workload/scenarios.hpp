// Application scenarios written against the SHMEM API, driven by the
// seeded traffic engine. Each scenario:
//   * runs SPMD inside an existing shmem::Runtime (the caller owns the
//     options — topology, tuning, faults — so tests and benches sweep them),
//   * samples per-request latency from sim time into the runtime's
//     MetricsRegistry log2 histograms under "workload.<name>.latency_ns"
//     (plus per-op families for the KV engine), and
//   * returns a ScenarioReport whose conservation counters are seed-
//     invariant and whose payloads are verified inline.
#pragma once

#include "shmem/runtime.hpp"
#include "workload/spec.hpp"
#include "workload/traffic.hpp"

namespace ntbshmem::workload {

// Sharded key-value store. Requires npes >= 2. Serves
// traffic.requests_per_pe requests on every PE: Zipf/uniform target shard,
// uniform slot, weighted op mix (get / put / ctx put_nbi batches / put-with-
// signal) and weighted value sizes. Values are a pure function of the key,
// so gets verify their payload inline and the final heap is checked slot by
// slot on every PE.
ScenarioReport run_kv(shmem::Runtime& rt, const KvSpec& spec,
                      std::uint64_t seed);

// 2-D torus-wrapped Jacobi halo exchange on the widest rows x cols
// factorisation of npes. Requests are halo puts (4 per PE per iteration);
// the latency histogram samples whole iterations. The report checksum is
// the global tile sum, reduced over SHMEM_TEAM_WORLD and identical on
// every PE.
ScenarioReport run_stencil(shmem::Runtime& rt, const StencilSpec& spec,
                           std::uint64_t seed);

// Hierarchical allreduce training step over strided teams. Requires
// npes % spec.groups == 0. Each step: seeded compute delay, in-group
// sum-reduce, cross-group reduce on the leader team, broadcast back down
// the group. Gradients are exact small integers, so every PE verifies the
// full reduction against the closed form each step.
ScenarioReport run_allreduce(shmem::Runtime& rt, const AllreduceSpec& spec,
                             std::uint64_t seed);

}  // namespace ntbshmem::workload
