#include "workload/slo.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace ntbshmem::workload {
namespace {

// Fixed-format doubles keep the serialization byte-stable across runs (the
// determinism tests diff whole files). %.17g round-trips exactly.
std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_f6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

SloLatency latency_from_row(std::string name, const obs::MetricRow& row) {
  SloLatency l;
  l.name = std::move(name);
  l.count = static_cast<std::uint64_t>(row.value);
  l.min = row.hist_min;
  l.max = row.hist_max;
  l.mean = l.count == 0 ? 0.0
                        : static_cast<double>(row.hist_sum) /
                              static_cast<double>(l.count);
  l.p50 = obs::percentile_of(row, 0.50);
  l.p90 = obs::percentile_of(row, 0.90);
  l.p99 = obs::percentile_of(row, 0.99);
  l.p999 = obs::percentile_of(row, 0.999);
  return l;
}

}  // namespace

std::string backend_name(const sim::Engine& engine) {
  return engine.backend() == sim::EngineBackend::kFibers ? "fibers" : "threads";
}

std::string topology_name(const fabric::TopologySpec& spec) {
  switch (spec.kind) {
    case fabric::TopologyKind::kRing:
      return "ring";
    case fabric::TopologyKind::kChordal: {
      std::string s = "chordal";
      for (const int skip : spec.skips) s += "+" + std::to_string(skip);
      return s;
    }
    case fabric::TopologyKind::kTorus2D:
      return "torus2d-" + std::to_string(spec.rows) + "x" +
             std::to_string(spec.cols);
    case fabric::TopologyKind::kFullMesh:
      return "fullmesh";
  }
  return "unknown";
}

std::string tuning_name(const shmem::TransportTuning& tuning) {
  std::string s = tuning.pipelined() || tuning.topology_collectives
                      ? "pipelined"
                      : "paper";
  if (tuning.reliability.enabled) s += "+reliable";
  return s;
}

std::string fault_plan_name(const sim::FaultSpec& faults) {
  if (!faults.any()) return "none";
  std::string s;
  const auto add = [&](const char* tag, double p) {
    if (p <= 0.0) return;
    if (!s.empty()) s += ",";
    s += tag;
    s += "=" + fmt_g(p);
  };
  add("doorbell_drop", faults.doorbell_drop);
  add("scratchpad_corrupt", faults.scratchpad_corrupt);
  add("dma_error", faults.dma_error);
  add("tlp_drop", faults.tlp_drop);
  add("tlp_corrupt", faults.tlp_corrupt);
  add("irq_delay", faults.irq_delay);
  if (!faults.link_flaps.empty()) {
    if (!s.empty()) s += ",";
    s += "flaps=" + std::to_string(faults.link_flaps.size());
  }
  return s;
}

SloReport build_slo_report(shmem::Runtime& rt, const ScenarioReport& run,
                           std::uint64_t seed) {
  SloReport r;
  r.scenario = run.scenario;
  // The shm backend has no simulated fabric: latencies are wall-clock and
  // the sim-only metadata (topology/tuning/fault plan) does not apply.
  const bool sim = rt.has_fabric();
  r.backend = sim ? backend_name(rt.engine()) : "shm";
  r.clock = sim ? "virtual" : "wall";
  r.topology = sim ? topology_name(rt.options().topology) : "none";
  r.tuning = sim ? tuning_name(rt.options().tuning) : "none";
  r.fault_plan = sim ? fault_plan_name(rt.options().faults) : "none";
  r.seed = seed;
  r.hosts = rt.num_hosts();
  r.run = run;

  const double elapsed_s =
      run.elapsed_ns > 0 ? static_cast<double>(run.elapsed_ns) * 1e-9 : 0.0;
  if (elapsed_s > 0.0) {
    r.goodput_rps =
        static_cast<double>(run.requests_completed) / elapsed_s;
    r.goodput_MBps =
        static_cast<double>(run.bytes_transferred) / elapsed_s / 1e6;
  }

  const obs::Snapshot snap = rt.obs().metrics.snapshot();
  // "workload.<scenario>.latency_ns" is the "total" family;
  // "workload.<scenario>.<op>.latency_ns" are the per-op families. Snapshot
  // rows are name-sorted, so the family order is deterministic.
  const std::string prefix = "workload." + run.scenario + ".";
  const std::string suffix = ".latency_ns";
  if (const obs::MetricRow* row = snap.find(prefix + "latency_ns")) {
    r.latencies.push_back(latency_from_row("total", *row));
  }
  for (const obs::MetricRow& row : snap.rows) {
    if (row.kind != obs::MetricRow::Kind::kHistogram) continue;
    if (row.name.size() <= prefix.size() + suffix.size()) continue;
    if (row.name.compare(0, prefix.size(), prefix) != 0) continue;
    if (row.name.compare(row.name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      continue;
    }
    const std::string op = row.name.substr(
        prefix.size(), row.name.size() - prefix.size() - suffix.size());
    r.latencies.push_back(latency_from_row(op, row));
  }

  if (sim) {
    fabric::RingFabric& fab = rt.fabric();
    for (int i = 0; i < fab.num_links(); ++i) {
      pcie::Link& link = fab.link(i);
      SloLink l;
      l.name = link.name();
      const auto dir_bytes = [&](const char* dir) -> std::uint64_t {
        const obs::MetricRow* row = snap.find(l.name + dir);
        return row == nullptr ? 0 : static_cast<std::uint64_t>(row->value);
      };
      l.bytes = dir_bytes(".a2b.bytes") + dir_bytes(".b2a.bytes");
      const double capacity =
          2.0 * link.config().effective_Bps() * elapsed_s;
      l.utilization =
          capacity > 0.0 ? static_cast<double>(l.bytes) / capacity : 0.0;
      r.links.push_back(std::move(l));
    }
  }

  r.critical_path = obs::critical_path_by_family(rt.obs().causal);

  if (rt.engine().schedule_digest_enabled()) {
    r.schedule_digest = rt.engine().schedule_digest().value();
    r.schedule_dispatches = rt.engine().schedule_digest().count();
  }
  return r;
}

void write_slo_json(const SloReport& r, std::ostream& out) {
  using obs::json_escape;
  out << "{\n";
  out << "  \"schema\": \"ntbshmem-slo-v1\",\n";
  out << "  \"scenario\": \"" << json_escape(r.scenario) << "\",\n";
  out << "  \"backend\": \"" << json_escape(r.backend) << "\",\n";
  out << "  \"clock\": \"" << json_escape(r.clock) << "\",\n";
  out << "  \"topology\": \"" << json_escape(r.topology) << "\",\n";
  out << "  \"tuning\": \"" << json_escape(r.tuning) << "\",\n";
  out << "  \"fault_plan\": \"" << json_escape(r.fault_plan) << "\",\n";
  out << "  \"seed\": " << r.seed << ",\n";
  out << "  \"hosts\": " << r.hosts << ",\n";
  out << "  \"requests\": {\"issued\": " << r.run.requests_issued
      << ", \"completed\": " << r.run.requests_completed << "},\n";
  out << "  \"bytes\": {\"requested\": " << r.run.bytes_requested
      << ", \"transferred\": " << r.run.bytes_transferred << "},\n";
  out << "  \"verify_errors\": " << r.run.verify_errors << ",\n";
  out << "  \"signals\": {\"sent\": " << r.run.signals_sent
      << ", \"received\": " << r.run.signals_received << "},\n";
  out << "  \"checksum\": " << fmt_g(r.run.checksum) << ",\n";
  out << "  \"elapsed_ns\": " << r.run.elapsed_ns << ",\n";
  out << "  \"goodput\": {\"requests_per_sec\": " << fmt_f6(r.goodput_rps)
      << ", \"MBps\": " << fmt_f6(r.goodput_MBps) << "},\n";

  out << "  \"latency_ns\": [";
  for (std::size_t i = 0; i < r.latencies.size(); ++i) {
    const SloLatency& l = r.latencies[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(l.name)
        << "\", \"count\": " << l.count << ", \"min\": " << l.min
        << ", \"max\": " << l.max << ", \"mean\": " << fmt_f6(l.mean)
        << ", \"p50\": " << l.p50 << ", \"p90\": " << l.p90
        << ", \"p99\": " << l.p99 << ", \"p999\": " << l.p999 << "}";
  }
  out << (r.latencies.empty() ? "],\n" : "\n  ],\n");

  out << "  \"links\": [";
  for (std::size_t i = 0; i < r.links.size(); ++i) {
    const SloLink& l = r.links[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(l.name)
        << "\", \"bytes\": " << l.bytes
        << ", \"utilization\": " << fmt_f6(l.utilization) << "}";
  }
  out << (r.links.empty() ? "],\n" : "\n  ],\n");

  out << "  \"critical_path\": [";
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    const obs::FamilyBreakdown& f = r.critical_path[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"family\": \"" << json_escape(f.family)
        << "\", \"traces\": " << f.traces << ", \"total_ns\": " << f.total_ns
        << ", \"edges_ns\": {";
    bool first = true;
    for (const auto& [kind, ns] : f.edge_ns) {
      out << (first ? "" : ", ") << "\"" << json_escape(kind) << "\": " << ns;
      first = false;
    }
    out << "}}";
  }
  out << (r.critical_path.empty() ? "],\n" : "\n  ],\n");

  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, r.schedule_digest);
  out << "  \"schedule_digest\": \"" << digest << "\",\n";
  out << "  \"schedule_dispatches\": " << r.schedule_dispatches << "\n";
  out << "}\n";
}

}  // namespace ntbshmem::workload
