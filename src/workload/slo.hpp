// SLO-style reporting for workload runs: percentiles out of the runtime's
// log2 latency histograms, goodput from the conservation counters, per-link
// utilization from the fabric byte counters, plus the self-describing
// metadata (backend, topology, tuning, fault plan, seed) that makes every
// artifact reproducible from its own header. Serialized as the
// "ntbshmem-slo-v1" JSON schema gated by CI.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "shmem/runtime.hpp"
#include "workload/traffic.hpp"

namespace ntbshmem::workload {

struct SloLatency {
  std::string name;  // "total" or the per-op family (get/put/put_nbi/...)
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

struct SloLink {
  std::string name;
  std::uint64_t bytes = 0;   // both directions
  double utilization = 0.0;  // bytes / (2 * effective_Bps * elapsed)
};

struct SloReport {
  std::string scenario;
  std::string backend;     // "fibers" | "threads" (sim engine) | "shm"
  std::string clock = "virtual";  // "virtual" (sim ns) | "wall" (CLOCK_MONOTONIC)
  std::string topology;    // e.g. "ring", "torus2d-4x4", "chordal+2+5"
  std::string tuning;      // "paper" | "pipelined" | "+reliable" suffix
  std::string fault_plan;  // "none" or a compact spec summary
  std::uint64_t seed = 0;
  int hosts = 0;

  ScenarioReport run;
  double goodput_rps = 0.0;
  double goodput_MBps = 0.0;
  std::vector<SloLatency> latencies;  // "total" first, per-op after
  std::vector<SloLink> links;

  // Per-op-family critical-path attribution out of the causal recorder
  // (obs::critical_path_by_family): where the longest cause chain of each
  // op actually spent its time — credit stall vs DMA vs IRQ delay vs
  // retransmit. Empty when causal recording was off.
  std::vector<obs::FamilyBreakdown> critical_path;

  // Engine schedule digest (0/0 when digest recording is off).
  std::uint64_t schedule_digest = 0;
  std::uint64_t schedule_dispatches = 0;
};

// ---- Metadata naming (shared with bench_util artifacts) ---------------------
std::string backend_name(const sim::Engine& engine);
std::string topology_name(const fabric::TopologySpec& spec);
std::string tuning_name(const shmem::TransportTuning& tuning);
std::string fault_plan_name(const sim::FaultSpec& faults);

// Builds the report from a finished scenario run: reads the latency
// histograms "workload.<scenario>[.<op>].latency_ns" and the per-link byte
// counters out of rt.obs().metrics, and stamps the runtime's configuration
// metadata. `seed` is the workload seed the run was driven with.
SloReport build_slo_report(shmem::Runtime& rt, const ScenarioReport& run,
                           std::uint64_t seed);

// Deterministic serialization (fixed field order, fixed float formatting):
// two runs with identical reports produce byte-identical JSON.
void write_slo_json(const SloReport& report, std::ostream& out);

}  // namespace ntbshmem::workload
