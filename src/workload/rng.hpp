// Seeded random streams and samplers for the workload layer.
//
// Streams are keyed exactly like sim::FaultPlan's decision streams: each
// (seed, key) pair owns an independent splitmix64 sequence whose state is
// derived from the workload seed and an FNV-1a hash of a stable string key
// ("kv.target.pe12"). Two properties follow:
//   * determinism — same seed + same per-stream draw sequence => identical
//     traffic, bit for bit, regardless of what other streams do;
//   * isolation — adding draws on one PE's op stream never perturbs another
//     PE's arrivals, so scenarios compose without re-seeding rituals.
// No wall clock, no std::random_device, no std::mt19937 (its sequence is
// specified, but seeding through seed_seq is easy to get wrong silently) —
// the detlint no-wallclock-entropy rule stays clean by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace ntbshmem::workload {

// FNV-1a 64-bit, same constants as sim::FaultPlan's site_hash: stream
// identities must be stable across platforms so a seed in a bug report
// reproduces the traffic anywhere.
constexpr std::uint64_t fnv1a(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return h;
}

// One independent splitmix64 stream.
class Stream {
 public:
  Stream(std::uint64_t seed, std::string_view key)
      : state_(seed ^ fnv1a(key)) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1), 53 bits of mantissa.
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, n). Modulo bias is < n / 2^64 — irrelevant for
  // the n <= a few thousand this layer draws (PEs, slots, size points).
  std::uint64_t next_below(std::uint64_t n) {
    return n <= 1 ? 0 : next_u64() % n;
  }

  // Exponential with the given mean (Poisson inter-arrival gaps).
  double next_exp(double mean) {
    // 1 - unit is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - next_unit());
  }

 private:
  std::uint64_t state_;
};

// Zipf-distributed ranks 0..n-1 with skew `theta` (theta = 0 is uniform;
// 0.99 is the YCSB default). Sampling is a binary search over the
// precomputed CDF: O(log n) per draw, exact, and allocation-free after
// construction — fine for the n <= 1024 PEs this simulator scales to.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta) : cdf_(n) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
    double mass = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = mass;
    }
    for (double& c : cdf_) c /= mass;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  std::size_t sample(Stream& s) const {
    const double u = s.next_unit();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

// Weighted discrete sampler over indices 0..n-1 (op mixes, size points).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights)
      : cdf_(weights.size()) {
    double mass = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] < 0.0) {
        throw std::invalid_argument("DiscreteSampler: negative weight");
      }
      mass += weights[i];
      cdf_[i] = mass;
    }
    if (cdf_.empty() || mass <= 0.0) {
      throw std::invalid_argument("DiscreteSampler: no positive weight");
    }
    for (double& c : cdf_) c /= mass;
    cdf_.back() = 1.0;
  }

  std::size_t sample(Stream& s) const {
    const double u = s.next_unit();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ntbshmem::workload
