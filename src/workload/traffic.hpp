// Traffic-engine core: arrival pacing and run accounting.
//
// ArrivalClock turns a TrafficSpec's arrival process into scheduled request
// times on the runtime's backend-neutral clock (virtual ns on the sim
// backend, wall-clock ns on shm). Open-loop clocks pre-compute each arrival
// from the PE's seeded stream and wait on the clock until it is due;
// closed-loop clocks simply stamp "now". Latency is always measured from
// the *scheduled* arrival, so an open-loop PE that falls behind sees its
// queueing delay in the histogram — the property that makes open-loop SLO
// numbers honest (closed-loop measurement hides coordinated omission).
#pragma once

#include <cstdint>
#include <string>

#include "shmem/runtime.hpp"
#include "sim/time.hpp"
#include "workload/rng.hpp"
#include "workload/spec.hpp"

namespace ntbshmem::workload {

class ArrivalClock {
 public:
  // `key` scopes the PE's arrival stream (e.g. "kv.arrival.pe3"); `start`
  // is the clock time of the first possible arrival (after setup barriers).
  ArrivalClock(const TrafficSpec& spec, std::uint64_t seed,
               const std::string& key, sim::Time start)
      : kind_(spec.arrival),
        gap_ns_(spec.rate_per_pe_hz > 0.0 ? 1.0e9 / spec.rate_per_pe_hz : 0.0),
        stream_(seed, key),
        next_(start) {}

  // Scheduled arrival time of the next request. Open-loop: advances the
  // schedule by the (fixed or exponential) gap and blocks the calling
  // process until the arrival is due — if the previous request overran, the
  // arrival is already in the past and the request starts late (queueing).
  // Closed-loop: returns the current time, never blocks.
  sim::Time next(shmem::Runtime& rt) {
    if (kind_ == ArrivalProcess::kClosedLoop) return rt.clock_now();
    const sim::Time scheduled = next_;
    const double gap =
        kind_ == ArrivalProcess::kOpenFixed ? gap_ns_ : stream_.next_exp(gap_ns_);
    next_ = scheduled + static_cast<sim::Dur>(gap);
    if (scheduled > rt.clock_now()) rt.clock_wait_until(scheduled);
    return scheduled;
  }

 private:
  ArrivalProcess kind_;
  double gap_ns_;
  Stream stream_;
  sim::Time next_;
};

// Aggregated outcome of one scenario run (summed over PEs by the scenario
// driver). The conservation pairs (issued/completed, requested/transferred)
// are the cross-seed invariants the determinism tests pin: any seed may
// reshuffle the traffic, but nothing may be lost.
struct ScenarioReport {
  std::string scenario;
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_transferred = 0;
  // Payload verification failures observed by the application (gets whose
  // bytes match neither the initial nor the written pattern, reduction
  // results off the exact integer expectation). Always 0 on a healthy run,
  // including under faults with reliability enabled.
  std::uint64_t verify_errors = 0;
  // put-with-signal conservation: every signal sent must be observed.
  std::uint64_t signals_sent = 0;
  std::uint64_t signals_received = 0;
  // Scenario-defined content digest (stencil global checksum, allreduce
  // final gradient sum); equal on every PE by construction.
  double checksum = 0.0;
  long long elapsed_ns = 0;
};

}  // namespace ntbshmem::workload
