// Workload specifications: the knobs that shape synthetic traffic.
//
// A TrafficSpec describes how requests arrive (open- vs closed-loop, fixed
// or Poisson gaps), where they go (uniform or Zipf-skewed target PEs) and
// what they are (a weighted op mix over put/get/put_nbi/put-with-signal/
// context ops and a weighted size distribution). Scenario specs embed a
// TrafficSpec plus their own shape parameters.
//
// Everything is plain data: specs hash into stable stream keys (rng.hpp),
// so a (spec, seed) pair pins the whole traffic trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace ntbshmem::workload {

// How requests enter the system.
//  * kClosedLoop: the next request is issued as soon as the previous one
//    completes — measures capacity (goodput at saturation).
//  * kOpenFixed: requests arrive every 1/rate seconds of sim time whether
//    or not earlier ones finished; latency is measured from the scheduled
//    arrival, so queueing delay counts — measures SLO under load.
//  * kOpenPoisson: like kOpenFixed with exponential gaps drawn from the
//    PE's seeded arrival stream (no wall clock anywhere).
enum class ArrivalProcess : std::uint8_t {
  kClosedLoop,
  kOpenFixed,
  kOpenPoisson,
};

// Target-PE selection. Zipf ranks order hot PEs by index (rank 0 hottest);
// the issuing PE is always excluded by collapsing it out of the rank space.
enum class TargetDist : std::uint8_t { kUniform, kZipf };

// Request kinds the KV engine mixes. kCtxPutNbi issues put_nbi on the PE's
// private communication context and completes batches with
// shmem_ctx_quiet — the contexts-under-load path nothing else exercises.
enum class OpKind : std::uint8_t {
  kPut,
  kGet,
  kCtxPutNbi,
  kPutSignal,
};

// One point of a discrete request-size distribution.
struct SizePoint {
  std::uint64_t bytes = 0;
  double weight = 0.0;
};

struct OpMixEntry {
  OpKind op = OpKind::kGet;
  double weight = 0.0;
};

struct TrafficSpec {
  std::uint64_t requests_per_pe = 1024;

  ArrivalProcess arrival = ArrivalProcess::kClosedLoop;
  // Open-loop arrival rate per PE (requests per second of sim time).
  double rate_per_pe_hz = 20'000.0;

  TargetDist targets = TargetDist::kZipf;
  double zipf_theta = 0.99;  // YCSB default skew

  // Read-heavy serving mix by default.
  std::vector<OpMixEntry> mix = {
      {OpKind::kGet, 0.70},
      {OpKind::kPut, 0.15},
      {OpKind::kCtxPutNbi, 0.10},
      {OpKind::kPutSignal, 0.05},
  };

  // Small-object serving sizes (bytes of value payload).
  std::vector<SizePoint> sizes = {
      {64, 0.25},
      {256, 0.50},
      {1024, 0.25},
  };

  // Outstanding put_nbi requests per private context before a ctx_quiet
  // completes the batch.
  int nbi_batch = 4;

  std::uint64_t max_size() const {
    std::uint64_t m = 0;
    for (const SizePoint& p : sizes) {
      if (p.bytes > m) m = p.bytes;
    }
    return m;
  }
};

// ---- Scenario shapes ---------------------------------------------------------

// Sharded key-value store: PE p owns slots [0, slots_per_pe) of shard p;
// key = target_pe * slots_per_pe + slot. Values are a pure function of the
// key (pattern bytes), so any interleaving of writers leaves the heap in a
// verifiable state and every get can validate its payload inline.
struct KvSpec {
  TrafficSpec traffic;
  int slots_per_pe = 256;
  std::string name = "kv";
};

// 2-D halo-exchange stencil (Jacobi) on the widest rows x cols
// factorisation of npes, torus-wrapped. Each iteration puts four halo
// edges (put_nbi + quiet), barriers, then relaxes the interior. The
// per-iteration latency is the SLO sample.
struct StencilSpec {
  int iterations = 32;
  int tile_rows = 32;
  int tile_cols = 32;
  std::string name = "stencil";
};

// Allreduce-dominated training step: world splits into `groups` strided
// data-parallel teams; each step draws a seeded compute time (backward-pass
// skew), sum-reduces the gradient inside the group, then the group leaders
// reduce across groups and broadcast back down. Per-step latency is the
// SLO sample.
struct AllreduceSpec {
  int steps = 16;
  int gradient_elems = 4096;  // floats
  int groups = 2;
  // Mean of the exponential per-step compute time, sim nanoseconds.
  double compute_mean_ns = 200'000.0;
  std::string name = "allreduce";
};

}  // namespace ntbshmem::workload
