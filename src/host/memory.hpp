// Per-host physical memory arena.
//
// Each simulated host owns a flat byte arena standing in for its DRAM.
// Regions are carved out for the symmetric heap chunks, bypass buffers and
// scratch areas; NTB BAR windows translate into (host, region, offset)
// targets, mirroring the BAR/translation-register scheme of Fig. 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ntbshmem::host {

// A carved-out slice of a host's arena. Plain value type; the arena owns
// the storage.
struct Region {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  bool valid() const { return size > 0; }
};

class OutOfMemory : public std::runtime_error {
 public:
  explicit OutOfMemory(const std::string& what) : std::runtime_error(what) {}
};

class MemoryArena {
 public:
  explicit MemoryArena(std::uint64_t capacity_bytes, std::string name = "ram");

  // View mode: the arena carves regions out of externally owned storage
  // instead of allocating its own — how the shm backend places each PE's
  // symmetric heap inside the mmap'ed segment (DESIGN.md §4j). The view
  // must outlive the arena; the arena never frees or grows it.
  explicit MemoryArena(std::span<std::byte> view, std::string name = "view");

  // Bump-allocates `size` bytes at `align` alignment. Throws OutOfMemory.
  Region allocate(std::uint64_t size, std::uint64_t align = 64);

  std::uint64_t capacity() const { return mem_.size(); }
  std::uint64_t used() const { return next_; }

  // Raw access to a region's bytes (bounds-checked).
  std::span<std::byte> bytes(const Region& region);
  std::span<const std::byte> bytes(const Region& region) const;
  // Sub-span at (region, offset, len).
  std::span<std::byte> bytes(const Region& region, std::uint64_t offset,
                             std::uint64_t len);
  std::span<const std::byte> bytes(const Region& region, std::uint64_t offset,
                                   std::uint64_t len) const;

 private:
  void check(const Region& region, std::uint64_t offset,
             std::uint64_t len) const;

  std::string name_;
  std::vector<std::byte> storage_;  // owned mode only (view mode: empty)
  std::span<std::byte> mem_;        // = storage_ (owned) or the external view
  std::uint64_t next_ = 0;
};

}  // namespace ntbshmem::host
