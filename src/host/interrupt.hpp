// MSI-style interrupt controller for a simulated host.
//
// NTB doorbell bits map to interrupt vectors. Raising a vector schedules
// the registered handler after the configured ISR-entry latency (kernel
// dispatch). Masked vectors latch as pending and fire on unmask — the
// set/clear/mask semantics the PCIe NTB doorbell registers expose.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/hub.hpp"
#include "sim/engine.hpp"

namespace ntbshmem::host {

class InterruptController {
 public:
  // Default vector count: two NTB adapters x 16 doorbell vectors, the
  // paper's ring host. Hosts carrying more adapters (torus, mesh) size
  // the controller up via `num_vectors`.
  static constexpr int kNumVectors = 32;

  // `isr_latency` models doorbell-write -> MSI -> kernel ISR entry;
  // `dispatch_cost` models the fixed ISR bookkeeping before the handler
  // body (which typically just notifies a service thread) runs.
  InterruptController(sim::Engine& engine, std::string name,
                      sim::Dur isr_latency, sim::Dur dispatch_cost,
                      int num_vectors = kNumVectors);

  int num_vectors() const { return static_cast<int>(handlers_.size()); }

  using Handler = std::function<void(int vector)>;

  // Registers the handler for `vector` (replaces any previous handler).
  void register_handler(int vector, Handler handler);

  // Raises `vector`: after isr_latency + dispatch_cost the handler runs in
  // scheduler context (it must not block; notify an Event instead).
  // Masked vectors latch and deliver on unmask. Callable from any context.
  void raise(int vector);

  void mask(int vector);
  void unmask(int vector);
  bool masked(int vector) const;
  bool pending(int vector) const;

  // Total deliveries that reached a handler (diagnostics/tests).
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  void check_vector(int vector) const;
  void deliver(int vector);

  sim::Engine& engine_;
  std::string name_;
  sim::Dur isr_latency_;
  sim::Dur dispatch_cost_;
  std::vector<Handler> handlers_;
  // Per-vector flags (not a 32-bit mask: a mesh host can carry hundreds
  // of doorbell vectors).
  std::vector<std::uint8_t> mask_flags_;
  std::vector<std::uint8_t> pending_flags_;
  std::uint64_t delivered_ = 0;

  // Observability (null instruments without an attached hub).
  obs::Counter* obs_raised_ = obs::MetricsRegistry::null_counter();
  obs::Counter* obs_delivered_ = obs::MetricsRegistry::null_counter();
  obs::Counter* obs_masked_latched_ = obs::MetricsRegistry::null_counter();
};

}  // namespace ntbshmem::host
