#include "host/memory.hpp"

namespace ntbshmem::host {

MemoryArena::MemoryArena(std::uint64_t capacity_bytes, std::string name)
    : name_(std::move(name)), storage_(capacity_bytes), mem_(storage_) {}

MemoryArena::MemoryArena(std::span<std::byte> view, std::string name)
    : name_(std::move(name)), mem_(view) {}

Region MemoryArena::allocate(std::uint64_t size, std::uint64_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("MemoryArena alignment must be a power of 2");
  }
  const std::uint64_t start = (next_ + align - 1) & ~(align - 1);
  if (size > mem_.size() || start > mem_.size() - size) {
    throw OutOfMemory(name_ + ": cannot allocate " + std::to_string(size) +
                      " bytes (used " + std::to_string(next_) + "/" +
                      std::to_string(mem_.size()) + ")");
  }
  next_ = start + size;
  return Region{start, size};
}

void MemoryArena::check(const Region& region, std::uint64_t offset,
                        std::uint64_t len) const {
  if (region.offset > mem_.size() ||
      region.size > mem_.size() - region.offset) {
    throw std::out_of_range(name_ + ": region outside arena");
  }
  if (offset > region.size || len > region.size - offset) {
    throw std::out_of_range(name_ + ": access outside region (offset " +
                            std::to_string(offset) + ", len " +
                            std::to_string(len) + ", region size " +
                            std::to_string(region.size) + ")");
  }
}

std::span<std::byte> MemoryArena::bytes(const Region& region) {
  return bytes(region, 0, region.size);
}

std::span<const std::byte> MemoryArena::bytes(const Region& region) const {
  return bytes(region, 0, region.size);
}

std::span<std::byte> MemoryArena::bytes(const Region& region,
                                        std::uint64_t offset,
                                        std::uint64_t len) {
  check(region, offset, len);
  return mem_.subspan(region.offset + offset, len);
}

std::span<const std::byte> MemoryArena::bytes(const Region& region,
                                              std::uint64_t offset,
                                              std::uint64_t len) const {
  check(region, offset, len);
  return std::span<const std::byte>(mem_).subspan(region.offset + offset, len);
}

}  // namespace ntbshmem::host
