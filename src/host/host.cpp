#include "host/host.hpp"

namespace ntbshmem::host {

Host::Host(sim::Engine& engine, HostId id, const HostConfig& config)
    : engine_(engine),
      id_(id),
      name_("host" + std::to_string(id)),
      memory_(config.memory_bytes, name_ + ".ram"),
      bus_(engine, name_ + ".bus", config.bus_Bps),
      interrupts_(engine, name_ + ".irq", config.isr_latency,
                  config.isr_dispatch, config.num_vectors) {}

HostConfig host_config_from(const TimingParams& params,
                            std::uint64_t memory_bytes) {
  HostConfig cfg;
  cfg.memory_bytes = memory_bytes;
  cfg.bus_Bps = params.host_bus_Bps;
  cfg.isr_latency = params.intr_delivery;
  cfg.isr_dispatch = params.isr_handling;
  return cfg;
}

}  // namespace ntbshmem::host
