#include "host/interrupt.hpp"

#include <stdexcept>

#include "sim/fault.hpp"

namespace ntbshmem::host {

InterruptController::InterruptController(sim::Engine& engine, std::string name,
                                         sim::Dur isr_latency,
                                         sim::Dur dispatch_cost,
                                         int num_vectors)
    : engine_(engine),
      name_(std::move(name)),
      isr_latency_(isr_latency),
      dispatch_cost_(dispatch_cost) {
  if (num_vectors < 1) {
    throw std::invalid_argument(name_ + ": need at least one vector");
  }
  handlers_.resize(static_cast<std::size_t>(num_vectors));
  mask_flags_.assign(static_cast<std::size_t>(num_vectors), 0);
  pending_flags_.assign(static_cast<std::size_t>(num_vectors), 0);
  if (obs::Hub* hub = engine.obs()) {
    obs::MetricsRegistry& reg = hub->metrics;
    obs_raised_ = reg.counter(name_ + ".raised");
    obs_delivered_ = reg.counter(name_ + ".delivered");
    obs_masked_latched_ = reg.counter(name_ + ".masked_latched");
  }
}

void InterruptController::check_vector(int vector) const {
  if (vector < 0 || vector >= num_vectors()) {
    throw std::out_of_range(name_ + ": interrupt vector out of range");
  }
}

void InterruptController::register_handler(int vector, Handler handler) {
  check_vector(vector);
  handlers_[static_cast<std::size_t>(vector)] = std::move(handler);
}

void InterruptController::raise(int vector) {
  check_vector(vector);
  obs_raised_->inc();
  if (mask_flags_[static_cast<std::size_t>(vector)] != 0) {
    pending_flags_[static_cast<std::size_t>(vector)] = 1;
    obs_masked_latched_->inc();
    return;
  }
  deliver(vector);
}

void InterruptController::deliver(int vector) {
  sim::Dur extra = 0;
  if (sim::FaultPlan* plan = engine_.faults()) {
    // Delayed/coalesced vector: the MSI is held back, modelled as extra
    // delivery latency. Handlers still run in raise order per frame class
    // because the NTB latch FIFO, not the ISR, carries frame identity.
    extra = plan->irq_delivery_delay(engine_.now(), name_, vector);
  }
  engine_.call_after(isr_latency_ + dispatch_cost_ + extra, [this, vector] {
    const auto& handler = handlers_[static_cast<std::size_t>(vector)];
    ++delivered_;
    obs_delivered_->inc();
    if (handler) handler(vector);
  });
}

void InterruptController::mask(int vector) {
  check_vector(vector);
  mask_flags_[static_cast<std::size_t>(vector)] = 1;
}

void InterruptController::unmask(int vector) {
  check_vector(vector);
  mask_flags_[static_cast<std::size_t>(vector)] = 0;
  if (pending_flags_[static_cast<std::size_t>(vector)] != 0) {
    pending_flags_[static_cast<std::size_t>(vector)] = 0;
    deliver(vector);
  }
}

bool InterruptController::masked(int vector) const {
  check_vector(vector);
  return mask_flags_[static_cast<std::size_t>(vector)] != 0;
}

bool InterruptController::pending(int vector) const {
  check_vector(vector);
  return pending_flags_[static_cast<std::size_t>(vector)] != 0;
}

}  // namespace ntbshmem::host
