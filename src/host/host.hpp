// A simulated compute node of the switchless cluster.
//
// Matches the paper's testbed node: a single-CPU host with DRAM, a memory
// bus shared by the NTB DMA traffic, an interrupt controller, and (added
// by the fabric) two NTB host adapters. One OpenSHMEM PE runs per host,
// as in the paper's 3-node prototype.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/timing_params.hpp"
#include "host/interrupt.hpp"
#include "host/memory.hpp"
#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"

namespace ntbshmem::host {

using HostId = int;

struct HostConfig {
  std::uint64_t memory_bytes = 64ull << 20;  // arena for heaps and buffers
  double bus_Bps = 5.2e9;                    // TimingParams::host_bus_Bps
  sim::Dur isr_latency = 15'000;             // TimingParams::intr_delivery
  sim::Dur isr_dispatch = 5'000;             // TimingParams::isr_handling
  // Interrupt vectors the controller exposes: 16 per NTB adapter. The
  // default covers the paper's two-adapter ring host; the fabric raises
  // it for higher-degree topologies (torus, mesh).
  int num_vectors = InterruptController::kNumVectors;
};

class Host {
 public:
  Host(sim::Engine& engine, HostId id, const HostConfig& config);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() const { return engine_; }

  MemoryArena& memory() { return memory_; }
  const MemoryArena& memory() const { return memory_; }
  // Memory-bus bandwidth shared by all DMA traffic entering/leaving DRAM.
  sim::BandwidthResource& bus() { return bus_; }
  InterruptController& interrupts() { return interrupts_; }

 private:
  sim::Engine& engine_;
  HostId id_;
  std::string name_;
  MemoryArena memory_;
  sim::BandwidthResource bus_;
  InterruptController interrupts_;
};

// Convenience: build a HostConfig from the global timing calibration.
HostConfig host_config_from(const TimingParams& params,
                            std::uint64_t memory_bytes = 64ull << 20);

}  // namespace ntbshmem::host
