// Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) for the
// span tracer, and plain-text / JSON dumps for the metrics registry.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ntbshmem::obs {

// Serializes the tracer as a Chrome trace-event JSON object
// {"traceEvents": [...], "displayTimeUnit": "ns"}.
//
// Mapping: track process -> pid (with a process_name metadata event), track
// -> tid (thread_name metadata), kBegin/kEnd -> "B"/"E", kInstant -> "i",
// kCounter -> "C", kAsyncBegin/kAsyncEnd -> "b"/"e" with the record id.
// Timestamps are sim-time nanoseconds emitted in microseconds with 3
// decimals (the format's native unit), so 1 ns resolution survives.
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

// Metrics snapshot as a JSON object: {"metrics": {name: value-or-histogram}}.
void write_metrics_json(const Snapshot& snap, std::ostream& out,
                        int indent = 0);

// Human-readable aligned dump, one metric per line.
void write_metrics_text(const Snapshot& snap, std::ostream& out);

// JSON string escaping (shared with bench JSON writers).
std::string json_escape(std::string_view s);

}  // namespace ntbshmem::obs
