#include "obs/flight.hpp"

namespace ntbshmem::obs {

const char* flight_code_name(FlightCode code) {
  switch (code) {
    case FlightCode::kPut: return "put";
    case FlightCode::kGet: return "get";
    case FlightCode::kAtomic: return "atomic";
    case FlightCode::kBarrier: return "barrier";
    case FlightCode::kFrameTx: return "frame_tx";
    case FlightCode::kFrameRx: return "frame_rx";
    case FlightCode::kAck: return "ack";
    case FlightCode::kNak: return "nak";
    case FlightCode::kRetransmit: return "retransmit";
    case FlightCode::kAckTimeout: return "ack_timeout";
    case FlightCode::kCreditStall: return "credit_stall";
    case FlightCode::kDmaError: return "dma_error";
    case FlightCode::kChecksumDrop: return "checksum_drop";
    case FlightCode::kDupDrop: return "dup_drop";
    case FlightCode::kOooDrop: return "ooo_drop";
    case FlightCode::kBarrierToken: return "barrier_token";
    case FlightCode::kDeliveryAck: return "delivery_ack";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) capacity = 512;
  std::size_t pow2 = 1;
  while (pow2 < capacity) pow2 <<= 1;
  ring_.resize(pow2);
  mask_ = pow2 - 1;
}

std::vector<FlightRecord> FlightRecorder::recent() const {
  std::vector<FlightRecord> out;
  const std::uint64_t n =
      head_ < ring_.size() ? head_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head_ - n; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

void dump_flight(const FlightRecorder& rec, std::string_view name,
                 std::ostream& out) {
  const std::vector<FlightRecord> records = rec.recent();
  const std::uint64_t evicted = rec.total() - records.size();
  out << "=== flight recorder " << name << ": " << records.size()
      << " records retained, " << evicted << " evicted ===\n";
  for (const FlightRecord& r : records) {
    out << "[t=" << r.t << "ns] "
        << flight_code_name(static_cast<FlightCode>(r.code)) << " a=" << r.a
        << " b=" << r.b << " c=" << r.c << "\n";
  }
}

}  // namespace ntbshmem::obs
