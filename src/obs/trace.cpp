#include "obs/trace.hpp"

namespace ntbshmem::obs {

TrackId Tracer::track(std::string_view process, std::string_view name) {
  // The key joins the pair with a separator that cannot appear in component
  // names (unit separator); interning the key gives a stable dense TrackId.
  std::string key;
  key.reserve(process.size() + 1 + name.size());
  key.append(process);
  key.push_back('\x1f');
  key.append(name);
  const TrackId id = track_keys_.id(key);
  if (static_cast<std::size_t>(id) == tracks_.size()) {
    Track t;
    t.process.assign(process);
    t.name.assign(name);
    tracks_.push_back(std::move(t));
  }
  return id;
}

void Tracer::instant_detail(TrackId track, CategoryId cat, EventId ev,
                            sim::Time t, std::string detail) {
  if (!enabled_) return;
  const auto idx = static_cast<std::uint32_t>(details_.size());
  details_.push_back(std::move(detail));
  push(track, {t, RecordKind::kInstant, cat, ev, 0, 0.0, idx});
}

void Tracer::push(TrackId track, TraceRecord rec) {
  auto& tr = tracks_.at(static_cast<std::size_t>(track));
  if (ring_capacity_ != 0 && tr.records.size() >= ring_capacity_) {
    tr.records.pop_front();
    ++tr.dropped;
  }
  tr.records.push_back(rec);
}

std::size_t Tracer::total_records() const {
  std::size_t n = 0;
  for (const auto& tr : tracks_) n += tr.records.size();
  return n;
}

void Tracer::clear() {
  for (auto& tr : tracks_) {
    tr.records.clear();
    tr.dropped = 0;
  }
  details_.clear();
  next_async_id_ = 1;
}

}  // namespace ntbshmem::obs
