#include "obs/causal.hpp"

#include <algorithm>

namespace ntbshmem::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp: return "op";
    case SpanKind::kFrame: return "frame";
    case SpanKind::kRetransmit: return "retransmit";
    case SpanKind::kIrq: return "irq";
    case SpanKind::kService: return "service";
    case SpanKind::kDma: return "dma";
    case SpanKind::kCreditStall: return "credit_stall";
    case SpanKind::kForward: return "forward";
    case SpanKind::kCopy: return "copy";
  }
  return "unknown";
}

const char* op_family_name(std::uint64_t family) {
  switch (family) {
    case kFamilyPut: return "put";
    case kFamilyGet: return "get";
    case kFamilyAtomic: return "atomic";
    case kFamilyBarrier: return "barrier";
  }
  return "other";
}

std::uint64_t CausalRecorder::begin_root(SpanKind kind, int host, sim::Time t0,
                                         std::uint64_t a, std::uint64_t b) {
  if (!enabled_) return 0;
  CausalSpan s;
  s.id = spans_.size() + 1;
  s.trace_id = next_trace_++;
  s.parent = 0;
  s.kind = kind;
  s.host = static_cast<std::int16_t>(host);
  s.port = -1;
  s.hop = 0;
  s.t0 = t0;
  s.a = a;
  s.b = b;
  spans_.push_back(s);
  return s.id;
}

std::uint64_t CausalRecorder::begin(const TraceCtx& cause, SpanKind kind,
                                    int host, int port, sim::Time t0,
                                    std::uint64_t a, std::uint64_t b) {
  if (!enabled_ || !cause.valid()) return 0;
  CausalSpan s;
  s.id = spans_.size() + 1;
  s.trace_id = cause.trace_id;
  s.parent = cause.parent;
  s.kind = kind;
  s.host = static_cast<std::int16_t>(host);
  s.port = static_cast<std::int16_t>(port);
  s.hop = cause.hop;
  s.t0 = t0;
  s.a = a;
  s.b = b;
  spans_.push_back(s);
  return s.id;
}

void CausalRecorder::end(std::uint64_t span, sim::Time t1) {
  if (span == 0 || span > spans_.size()) return;
  spans_[span - 1].t1 = t1;
}

TraceCtx CausalRecorder::ctx_of(std::uint64_t span) const {
  if (span == 0 || span > spans_.size()) return {};
  const CausalSpan& s = spans_[span - 1];
  return {s.trace_id, s.id, s.hop};
}

const CausalSpan* CausalRecorder::find(std::uint64_t id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void CausalRecorder::clear() {
  spans_.clear();
  next_trace_ = 1;
}

namespace {

// A span that was never closed contributes no duration (its start time
// still anchors the chain).
sim::Time end_of(const CausalSpan& s) {
  return s.t1 == kSpanOpen ? s.t0 : s.t1;
}

}  // namespace

CriticalPath critical_path(const CausalRecorder& rec, std::uint64_t root_id) {
  CriticalPath cp;
  const CausalSpan* root = rec.find(root_id);
  if (root == nullptr) return cp;
  cp.root = root_id;

  // The latest-ending descendant bounds when the operation's effects were
  // complete; ties break toward the smallest id (allocation order) so the
  // extraction is deterministic. Spans are id-ordered and parents precede
  // children, so one forward pass finds every descendant.
  const auto& spans = rec.spans();
  std::vector<bool> in_tree(spans.size() + 1, false);
  in_tree[root_id] = true;
  std::uint64_t leaf = root_id;
  sim::Time leaf_end = end_of(*root);
  for (const CausalSpan& s : spans) {
    if (s.id == root_id) continue;
    if (s.parent == 0 || s.parent >= s.id || !in_tree[s.parent]) continue;
    in_tree[s.id] = true;
    const sim::Time e = end_of(s);
    if (e > leaf_end) {
      leaf_end = e;
      leaf = s.id;
    }
  }
  cp.leaf = leaf;
  cp.total = std::max<sim::Dur>(0, leaf_end - root->t0);

  // Chain from leaf to root via parent pointers, then attribute exclusive
  // time with a back-walk: each span owns the part of [its start, cursor]
  // not already claimed by its on-chain descendant.
  std::vector<std::uint64_t> chain;  // leaf -> root
  for (std::uint64_t id = leaf; id != 0;) {
    chain.push_back(id);
    const CausalSpan* s = rec.find(id);
    id = (s == nullptr || id == root_id) ? 0 : s->parent;
  }
  sim::Time cursor = leaf_end;
  std::vector<PathEdge> edges;  // built leaf -> root, reversed at the end
  for (const std::uint64_t id : chain) {
    const CausalSpan& s = *rec.find(id);
    PathEdge e;
    e.span = id;
    e.kind = s.kind;
    e.dur = std::max<sim::Dur>(0, cursor - s.t0);
    cursor = std::min(cursor, s.t0);
    edges.push_back(e);
  }
  cp.edges.assign(edges.rbegin(), edges.rend());
  return cp;
}

std::vector<FamilyBreakdown> critical_path_by_family(
    const CausalRecorder& rec) {
  std::map<std::string, FamilyBreakdown> by_family;
  for (const CausalSpan& s : rec.spans()) {
    if (s.parent != 0 || s.kind != SpanKind::kOp) continue;
    const CriticalPath cp = critical_path(rec, s.id);
    FamilyBreakdown& fb = by_family[op_family_name(s.a)];
    if (fb.family.empty()) fb.family = op_family_name(s.a);
    fb.traces += 1;
    fb.total_ns += static_cast<std::uint64_t>(cp.total);
    for (const PathEdge& e : cp.edges) {
      fb.edge_ns[span_kind_name(e.kind)] +=
          static_cast<std::uint64_t>(e.dur);
    }
  }
  std::vector<FamilyBreakdown> out;
  out.reserve(by_family.size());
  for (auto& [name, fb] : by_family) out.push_back(std::move(fb));
  return out;
}

}  // namespace ntbshmem::obs
