#include "obs/export.hpp"

#include <cstdio>
#include <map>

namespace ntbshmem::obs {
namespace {

// Chrome trace timestamps are microseconds; sim time is integer ns. Three
// decimals keep full 1 ns resolution.
std::string ts_us(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t) / 1000.0);
  return buf;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  // Stable pid per distinct process name, in first-seen track order.
  std::map<std::string, int> pids;
  std::vector<std::pair<std::string, int>> pid_order;
  for (const auto& tr : tracer.tracks()) {
    if (pids.emplace(tr.process, static_cast<int>(pids.size()) + 1).second) {
      pid_order.emplace_back(tr.process, pids.at(tr.process));
    }
  }

  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& body) {
    if (!first) out << ",";
    first = false;
    out << "\n" << body;
  };

  for (const auto& [proc, pid] : pid_order) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         json_escape(proc) + "\"}}");
  }
  for (std::size_t i = 0; i < tracer.tracks().size(); ++i) {
    const auto& tr = tracer.tracks()[i];
    const int pid = pids.at(tr.process);
    const int tid = static_cast<int>(i) + 1;
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
         std::to_string(tid) + ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(tr.name) + "\"}}");
  }

  for (std::size_t i = 0; i < tracer.tracks().size(); ++i) {
    const auto& tr = tracer.tracks()[i];
    const int pid = pids.at(tr.process);
    const int tid = static_cast<int>(i) + 1;
    const std::string ids = ",\"pid\":" + std::to_string(pid) +
                            ",\"tid\":" + std::to_string(tid);
    for (const auto& rec : tr.records) {
      const std::string name =
          json_escape(tracer.events().name(rec.event));
      const std::string cat =
          json_escape(tracer.categories().name(rec.category));
      std::string body = "{\"name\":\"" + name + "\",\"cat\":\"" + cat +
                         "\",\"ts\":" + ts_us(rec.t) + ids;
      switch (rec.kind) {
        case RecordKind::kBegin:
          body += ",\"ph\":\"B\"}";
          break;
        case RecordKind::kEnd:
          body += ",\"ph\":\"E\"}";
          break;
        case RecordKind::kInstant: {
          body += ",\"ph\":\"i\",\"s\":\"t\"";
          std::string args;
          if (rec.value != 0.0) args += "\"value\":" + fmt_double(rec.value);
          if (rec.detail != kNoDetail) {
            if (!args.empty()) args += ",";
            args += "\"detail\":\"" + json_escape(tracer.detail(rec.detail)) +
                    "\"";
          }
          if (!args.empty()) body += ",\"args\":{" + args + "}";
          body += "}";
          break;
        }
        case RecordKind::kCounter:
          body += ",\"ph\":\"C\",\"args\":{\"" + name +
                  "\":" + fmt_double(rec.value) + "}}";
          break;
        case RecordKind::kAsyncBegin:
          body += ",\"ph\":\"b\",\"id\":\"" + std::to_string(rec.id) + "\"}";
          break;
        case RecordKind::kAsyncEnd:
          body += ",\"ph\":\"e\",\"id\":\"" + std::to_string(rec.id) + "\"}";
          break;
        case RecordKind::kFlowStart:
          body += ",\"ph\":\"s\",\"id\":\"" + std::to_string(rec.id) + "\"}";
          break;
        case RecordKind::kFlowStep:
          body += ",\"ph\":\"t\",\"id\":\"" + std::to_string(rec.id) + "\"}";
          break;
        case RecordKind::kFlowEnd:
          // bp:"e" binds the terminus to the enclosing slice (not the next).
          body += ",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"" +
                  std::to_string(rec.id) + "\"}";
          break;
      }
      emit(body);
    }
  }
  out << "\n]}\n";
}

namespace {

void write_row_json(const MetricRow& row, std::ostream& out) {
  switch (row.kind) {
    case MetricRow::Kind::kCounter:
    case MetricRow::Kind::kGauge:
    case MetricRow::Kind::kProbe:
      out << fmt_double(row.value);
      break;
    case MetricRow::Kind::kHistogram: {
      out << "{\"count\":" << fmt_double(row.value) << ",\"sum\":"
          << row.hist_sum << ",\"min\":" << row.hist_min
          << ",\"max\":" << row.hist_max << ",\"buckets\":[";
      for (std::size_t b = 0; b < row.hist_buckets.size(); ++b) {
        if (b != 0) out << ",";
        out << row.hist_buckets[b];
      }
      out << "]}";
      break;
    }
  }
}

}  // namespace

void write_metrics_json(const Snapshot& snap, std::ostream& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
  out << pad << "{\n" << pad2 << "\"metrics\": {";
  for (std::size_t i = 0; i < snap.rows.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n" << pad2 << "  \"" << json_escape(snap.rows[i].name) << "\": ";
    write_row_json(snap.rows[i], out);
  }
  out << "\n" << pad2 << "}\n" << pad << "}\n";
}

void write_metrics_text(const Snapshot& snap, std::ostream& out) {
  std::size_t width = 0;
  for (const auto& row : snap.rows) width = std::max(width, row.name.size());
  for (const auto& row : snap.rows) {
    out << row.name << std::string(width - row.name.size() + 2, ' ');
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
      case MetricRow::Kind::kProbe:
        out << fmt_double(row.value) << "\n";
        break;
      case MetricRow::Kind::kGauge:
        out << fmt_double(row.value) << " (gauge)\n";
        break;
      case MetricRow::Kind::kHistogram:
        out << "count=" << fmt_double(row.value) << " sum=" << row.hist_sum
            << " min=" << row.hist_min << " max=" << row.hist_max
            << " mean="
            << fmt_double(row.value == 0.0
                              ? 0.0
                              : static_cast<double>(row.hist_sum) / row.value)
            << "\n";
        break;
    }
  }
}

}  // namespace ntbshmem::obs
