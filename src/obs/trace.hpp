// Typed span tracer: the timeline half of the observability subsystem.
//
// Components record begin/end spans, instant events, async (overlapping)
// spans and counter samples onto named *tracks* — one track per host
// service thread, NTB port or link — using interned CategoryId/EventId
// integers instead of per-record strings. Records land in per-track
// append-only buffers; an optional bounded-memory ring mode keeps only the
// newest N records per track (long soak runs).
//
// Cost model: every record method first checks enabled() and returns
// immediately when tracing is off (the null-recorder pattern of
// sim::TraceRecorder). Recording never touches the simulation engine, so
// enabling tracing cannot perturb virtual time — golden-time tests pass
// bit-identically with tracing on (asserted by shmem_pipeline_test).
//
// Export: obs/export.hpp serializes a Tracer into Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), mapping track processes to
// pids and tracks to tids.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/ids.hpp"
#include "sim/time.hpp"

namespace ntbshmem::obs {

enum class RecordKind : std::uint8_t {
  kBegin,        // synchronous span open (nests per track)
  kEnd,          // synchronous span close
  kInstant,      // point event
  kCounter,      // counter-timeline sample (value = sample)
  kAsyncBegin,   // overlapping span open, matched by `id`
  kAsyncEnd,     // overlapping span close, matched by `id`
  kFlowStart,    // Perfetto flow arrow origin, matched by `id`
  kFlowStep,     // flow arrow waypoint
  kFlowEnd,      // flow arrow terminus
};

inline constexpr std::uint32_t kNoDetail = 0xffffffffu;

struct TraceRecord {
  sim::Time t = 0;
  RecordKind kind = RecordKind::kInstant;
  CategoryId category = 0;
  EventId event = 0;
  std::uint64_t id = 0;   // async-span correlation id
  double value = 0.0;     // counter sample / instant numeric argument
  std::uint32_t detail = kNoDetail;  // index into Tracer::detail(), or none
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Bounded-memory mode: keep at most `per_track` records per track,
  // evicting the oldest (0 = unbounded append-only buffers).
  void set_ring_capacity(std::size_t per_track) { ring_capacity_ = per_track; }
  std::size_t ring_capacity() const { return ring_capacity_; }

  // ---- Interning (do this once, not per record) ----------------------------
  CategoryId category(std::string_view name) {
    return static_cast<CategoryId>(categories_.id(name));
  }
  EventId event(std::string_view name) { return events_.id(name); }

  // Registers (or finds) the track (`process`, `name`); `process` groups
  // tracks into Perfetto processes (one per simulated host, plus "fabric"
  // for inter-host resources). Idempotent: same pair -> same id.
  TrackId track(std::string_view process, std::string_view name);

  // ---- Recording (no-ops while disabled) -----------------------------------
  void begin(TrackId track, CategoryId cat, EventId ev, sim::Time t) {
    if (enabled_) push(track, {t, RecordKind::kBegin, cat, ev, 0, 0.0, kNoDetail});
  }
  void end(TrackId track, CategoryId cat, EventId ev, sim::Time t) {
    if (enabled_) push(track, {t, RecordKind::kEnd, cat, ev, 0, 0.0, kNoDetail});
  }
  void instant(TrackId track, CategoryId cat, EventId ev, sim::Time t,
               double value = 0.0) {
    if (enabled_)
      push(track, {t, RecordKind::kInstant, cat, ev, 0, value, kNoDetail});
  }
  // Instant carrying a free-form string payload (rare events only — fault
  // injections, legacy TraceRecorder mirroring); the string is stored in a
  // side table and referenced by index.
  void instant_detail(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                      std::string detail);
  void async_begin(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                   std::uint64_t id) {
    if (enabled_)
      push(track, {t, RecordKind::kAsyncBegin, cat, ev, id, 0.0, kNoDetail});
  }
  void async_end(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                 std::uint64_t id) {
    if (enabled_)
      push(track, {t, RecordKind::kAsyncEnd, cat, ev, id, 0.0, kNoDetail});
  }
  void counter(TrackId track, EventId ev, sim::Time t, double value) {
    if (enabled_)
      push(track, {t, RecordKind::kCounter, 0, ev, 0, value, kNoDetail});
  }
  // Flow arrows: link slices across tracks by `id` (the causal trace_id).
  // Chrome binds each flow record to the enclosing synchronous slice on the
  // same track, so emit these inside an open kBegin/kEnd pair.
  void flow_start(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                  std::uint64_t id) {
    if (enabled_)
      push(track, {t, RecordKind::kFlowStart, cat, ev, id, 0.0, kNoDetail});
  }
  void flow_step(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                 std::uint64_t id) {
    if (enabled_)
      push(track, {t, RecordKind::kFlowStep, cat, ev, id, 0.0, kNoDetail});
  }
  void flow_end(TrackId track, CategoryId cat, EventId ev, sim::Time t,
                std::uint64_t id) {
    if (enabled_)
      push(track, {t, RecordKind::kFlowEnd, cat, ev, id, 0.0, kNoDetail});
  }

  // Process-unique ids for async-span correlation.
  std::uint64_t next_async_id() { return next_async_id_++; }

  // ---- Introspection / export ----------------------------------------------
  struct Track {
    std::string process;
    std::string name;
    std::deque<TraceRecord> records;  // time order (sim time is monotonic)
    std::uint64_t dropped = 0;        // evicted by ring mode
  };

  const std::vector<Track>& tracks() const { return tracks_; }
  const Interner& categories() const { return categories_; }
  const Interner& events() const { return events_; }
  const std::string& detail(std::uint32_t idx) const {
    return details_.at(static_cast<std::size_t>(idx));
  }
  std::size_t total_records() const;

  // Drops all records (tracks and interned names survive; cached ids held
  // by components stay valid).
  void clear();

 private:
  void push(TrackId track, TraceRecord rec);

  bool enabled_ = false;
  std::size_t ring_capacity_ = 0;
  std::uint64_t next_async_id_ = 1;
  std::vector<Track> tracks_;
  Interner track_keys_;  // "process\x1fname" -> TrackId
  Interner categories_;
  Interner events_;
  std::vector<std::string> details_;
};

}  // namespace ntbshmem::obs
