// Causal cross-hop tracing: the third half of the observability subsystem.
//
// The span Tracer (trace.hpp) answers "what was this component doing at
// time t"; the CausalRecorder answers "why". Every top-level SHMEM
// operation opens a *root* causal span; every frame emission, retransmit,
// interrupt delivery, service dispatch, DMA window write, credit stall and
// store-and-forward hop opens a child span linked to its cause — across
// hosts, because the transport carries a compact TraceCtx with each frame
// (see DESIGN.md §4h for the modelled on-wire encoding). One shmem_put that
// crosses three hosts becomes one tree whose leaves are the final delivery
// events, and because the DES is deterministic the tree is golden-checkable
// bit for bit.
//
// Cost model: identical to the Tracer. Every record method first checks
// enabled() and returns immediately when causal recording is off, and
// recording never touches the simulation engine, so enabling it cannot
// perturb virtual time. TraceCtx values ride *beside* the modelled wire
// (a zero-cost adapter sidecar on NtbPort), so the disabled path adds no
// header bytes and no register writes.
//
// Offline consumers: critical_path() extracts the longest cause chain of a
// tree with per-edge attribution (credit stall vs DMA vs IRQ delay vs
// retransmit); critical_path_by_family() aggregates that per op family for
// the ntbshmem-slo-v1 artifact; tools/tracecheck asserts causal invariants
// over the exported ntbshmem-trace-v1 JSON.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ntbshmem::obs {

// Compact trace context propagated with every frame: enough for the
// receiver to attach its spans to the sender's tree. trace_id == 0 is the
// null context (causal recording off, or a frame outside any operation).
struct TraceCtx {
  std::uint64_t trace_id = 0;  // tree identity, allocated at the root
  std::uint64_t parent = 0;    // causal parent span id on the sending side
  std::uint8_t hop = 0;        // store-and-forward hops taken so far

  bool valid() const { return trace_id != 0; }
};

enum class SpanKind : std::uint8_t {
  kOp = 1,          // root: one SHMEM operation (family in `a`)
  kFrame = 2,       // one frame emission: open at doorbell, closed at ack
  kRetransmit = 3,  // timer- or NAK-driven re-emission of a kFrame parent
  kIrq = 4,         // doorbell latch -> service dispatch (IRQ + queue delay)
  kService = 5,     // receiver-side frame processing (rx service)
  kDma = 6,         // window DMA of one message's payload segments
  kCreditStall = 7, // sender blocked waiting for a ScratchPad channel credit
  kForward = 8,     // store-and-forward re-emission toward the next hop
  kCopy = 9,        // staging-buffer copy / reassembly work
};

// Stable lowercase names used by the JSON export and tools/tracecheck.
const char* span_kind_name(SpanKind kind);

// Op families carried in a root span's `a` field (and named in the SLO
// artifact's critical-path section).
inline constexpr std::uint64_t kFamilyPut = 1;
inline constexpr std::uint64_t kFamilyGet = 2;
inline constexpr std::uint64_t kFamilyAtomic = 3;
inline constexpr std::uint64_t kFamilyBarrier = 4;
const char* op_family_name(std::uint64_t family);

// Sentinel for a span that was never closed (tracecheck flags these; a
// kFrame left open is precisely "a doorbell with no matching ack").
inline constexpr sim::Time kSpanOpen = -1;

struct CausalSpan {
  std::uint64_t id = 0;        // 1-based, allocation order (deterministic)
  std::uint64_t trace_id = 0;  // tree this span belongs to
  std::uint64_t parent = 0;    // 0 = root
  SpanKind kind = SpanKind::kOp;
  std::int16_t host = -1;      // host the span executed on (-1 = unknown)
  std::int16_t port = -1;      // port index within the host (-1 = none)
  std::uint8_t hop = 0;        // hops from the origin host
  sim::Time t0 = 0;
  sim::Time t1 = kSpanOpen;
  std::uint64_t a = 0;  // kind-specific: op family | frame seq | msg id
  std::uint64_t b = 0;  // kind-specific: doorbell bit | bytes | retry count
};

class CausalRecorder {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Opens a root span with a freshly allocated trace id. Returns the span
  // id (0 while disabled — all other methods treat span/ctx 0 as null).
  std::uint64_t begin_root(SpanKind kind, int host, sim::Time t0,
                           std::uint64_t a = 0, std::uint64_t b = 0);

  // Opens a child span caused by `cause` (no-op null span when the recorder
  // is disabled or the cause is the null context).
  std::uint64_t begin(const TraceCtx& cause, SpanKind kind, int host, int port,
                      sim::Time t0, std::uint64_t a = 0, std::uint64_t b = 0);

  void end(std::uint64_t span, sim::Time t1);

  // The context to hand to effects caused by `span` (null for span 0).
  TraceCtx ctx_of(std::uint64_t span) const;

  const std::deque<CausalSpan>& spans() const { return spans_; }
  const CausalSpan* find(std::uint64_t id) const;
  std::uint64_t next_trace_id() const { return next_trace_; }
  void clear();

 private:
  bool enabled_ = false;
  std::uint64_t next_trace_ = 1;
  std::deque<CausalSpan> spans_;  // spans_[id - 1], ids are allocation order
};

// ---- Critical-path extraction ----------------------------------------------

struct PathEdge {
  std::uint64_t span = 0;
  SpanKind kind = SpanKind::kOp;
  sim::Dur dur = 0;  // wall share of the chain attributed to this span
};

struct CriticalPath {
  std::uint64_t root = 0;
  std::uint64_t leaf = 0;   // descendant whose end time bounds the tree
  sim::Dur total = 0;       // leaf end - root start
  std::vector<PathEdge> edges;  // root -> leaf order
};

// Longest cause chain of the tree rooted at `root_id`: the chain from the
// root to the latest-ending descendant, with each span attributed the part
// of the chain's wall time not already covered by its on-chain descendants
// (an exclusive-time back-walk; open spans count as zero-length).
CriticalPath critical_path(const CausalRecorder& rec, std::uint64_t root_id);

struct FamilyBreakdown {
  std::string family;        // "put" | "get" | "atomic" | "barrier"
  std::uint64_t traces = 0;  // number of root spans aggregated
  std::uint64_t total_ns = 0;
  // span-kind name -> summed attributed ns (std::map: deterministic order).
  std::map<std::string, std::uint64_t> edge_ns;
};

// Critical paths of every root span, aggregated per op family; families
// sorted by name. Empty when the recorder saw no roots.
std::vector<FamilyBreakdown> critical_path_by_family(const CausalRecorder& rec);

}  // namespace ntbshmem::obs
