// The Hub bundles one simulation's observability state: the span tracer,
// the metrics registry, the causal recorder and the flight-recorder
// registry. A sim::Engine carries an optional Hub* (null by default — the
// zero-cost path); components reach it through engine.obs() at construction
// and cache instrument pointers / interned ids.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/causal.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ntbshmem::obs {

struct Hub {
  Tracer tracer;
  MetricsRegistry metrics;
  CausalRecorder causal;
  // Flight recorders registered by their owners (one per host transport,
  // registration order = host order, so iteration is deterministic). The
  // hub does not own them; owners outlive the hub's last dump because the
  // Runtime declares the hub before the transports.
  std::vector<std::pair<std::string, const FlightRecorder*>> flights;
};

}  // namespace ntbshmem::obs
