// The Hub bundles one simulation's observability state: the span tracer and
// the metrics registry. A sim::Engine carries an optional Hub* (null by
// default — the zero-cost path); components reach it through
// engine.obs() at construction and cache instrument pointers / interned ids.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ntbshmem::obs {

struct Hub {
  Tracer tracer;
  MetricsRegistry metrics;
};

}  // namespace ntbshmem::obs
