// Interned identifiers for the observability layer.
//
// Hot-path instrumentation must not construct or hash std::strings per
// record (the O(n)-string cost that made sim::TraceRecorder unusable as a
// profiler). Components intern their category/event names once — typically
// at construction — and record small integer ids from then on. Interned ids
// are dense, stable for the lifetime of the interner, and reversible for
// export.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ntbshmem::obs {

// Dense id spaces. 0 is a valid id (the first interned name).
using CategoryId = std::uint16_t;
using EventId = std::uint32_t;
using TrackId = std::uint32_t;

// String -> dense id table. Interning an already-known name returns the
// original id; ids are never reused or reordered, so a cached id stays
// valid as long as the interner lives.
class Interner {
 public:
  std::uint32_t id(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto fresh = static_cast<std::uint32_t>(names_.size());
    // deque: elements never relocate, so the map keys can safely view the
    // stored strings (a vector reallocation would move SSO buffers).
    names_.emplace_back(name);
    ids_.emplace(names_.back(), fresh);
    return fresh;
  }

  const std::string& name(std::uint32_t id) const {
    return names_.at(static_cast<std::size_t>(id));
  }

  std::size_t size() const { return names_.size(); }

  void clear() {
    ids_.clear();
    names_.clear();
  }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t, SvHash, SvEq> ids_;
};

}  // namespace ntbshmem::obs
