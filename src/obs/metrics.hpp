// Per-layer metrics registry: named monotonic counters, gauges and
// log2-bucketed histograms, registered once by each component (NtbPort,
// pcie::Link, host::InterruptController, shmem::Transport) and snapshotable
// at any sim time.
//
// Design notes:
//  - Instruments are owned by the registry (deque storage: handed-out
//    pointers stay valid as more instruments register). Components hold raw
//    pointers for +=-style hot-path updates — one pointer deref, no lookup.
//  - Components constructed without a registry (direct unit tests) get the
//    shared null instruments, so instrumentation code never branches on
//    "do I have a registry?".
//  - Probes are pull-style gauges: a callback sampled at snapshot() time,
//    used to expose pre-existing stats structs (e.g. TransportStats) without
//    double-counting.
//  - snapshot() returns rows sorted by name so exports are deterministic.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ntbshmem::obs {

// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta) { value_ += delta; }
  void inc() { ++value_; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written value (levels: credits available, queue depth, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram of non-negative integer samples (latencies in ns,
// transfer sizes in bytes). Bucket b holds values v with bit_width(v) == b:
// bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3}, bucket 3 = {4..7}, ...
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  // Inclusive value range covered by a bucket.
  static std::uint64_t bucket_lo(std::size_t b) {
    return b <= 1 ? (b == 0 ? 0 : 1) : (std::uint64_t{1} << (b - 1));
  }
  static std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }
  // Highest non-empty bucket + 1 (0 when empty) — export only what exists.
  std::size_t used_buckets() const;

  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // containing log2 bucket, clamped to the recorded min/max so exact-sample
  // extremes (p0/p100) come back exact. 0 on an empty histogram.
  std::uint64_t percentile(double q) const;

  // Merges another histogram's samples in (bucket-wise exact; count/sum
  // exact; min/max exact) — how the shm backend folds each forked PE's
  // registry back into the parent's after a run. The wire-image overload
  // takes exported state: `buckets` holds the first `nbuckets` buckets
  // (used_buckets() of the source), the rest are zero.
  void absorb(const Histogram& other);
  void absorb(const std::uint64_t* buckets, std::size_t nbuckets,
              std::uint64_t count, std::uint64_t sum, std::uint64_t min,
              std::uint64_t max);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram, kProbe };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter/gauge/probe sample; histogram count
  // Histogram-only detail (empty otherwise).
  std::uint64_t hist_sum = 0;
  std::uint64_t hist_min = 0;
  std::uint64_t hist_max = 0;
  std::vector<std::uint64_t> hist_buckets;  // used_buckets() entries
};

struct Snapshot {
  std::vector<MetricRow> rows;  // sorted by name

  const MetricRow* find(std::string_view name) const;
  // Sum of all counter/probe rows whose name ends with `suffix` — merges a
  // per-host family like "host*.transport.retransmits" into one number.
  double total(std::string_view suffix) const;
};

// Percentile over exported histogram buckets (MetricRow::hist_buckets): the
// same interpolation as Histogram::percentile but computable from a
// snapshot/JSON round-trip, where only the bucket counts survive. `count`
// is the total sample count, `min`/`max` the recorded extremes.
std::uint64_t percentile_from_buckets(const std::vector<std::uint64_t>& buckets,
                                      std::uint64_t count, std::uint64_t min,
                                      std::uint64_t max, double q);

// Convenience overload for a snapshot row (0 for non-histogram rows).
std::uint64_t percentile_of(const MetricRow& row, double q);

class MetricsRegistry {
 public:
  // Registration is idempotent per name: re-registering returns the same
  // instrument (components torn down and rebuilt against one registry
  // accumulate, which is what cross-run totals want; use a fresh registry
  // per Runtime otherwise).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  // Pull-style gauge evaluated at snapshot() time.
  void register_probe(std::string_view name, std::function<double()> fn);

  Snapshot snapshot() const;

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           probes_.size();
  }

  // Shared write-sink instruments for components built without a registry;
  // never read, so concurrent ownership by many components is fine.
  static Counter* null_counter();
  static Gauge* null_gauge();
  static Histogram* null_histogram();

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
  };
  struct Probe {
    std::string name;
    std::function<double()> fn;
  };

  template <typename T>
  T* find_or_add(std::deque<Named<T>>& store, std::string_view name);

  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  std::deque<Probe> probes_;
};

}  // namespace ntbshmem::obs
