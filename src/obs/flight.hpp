// Always-on flight recorder: a bounded per-host ring of fixed-size event
// records that costs one masked store per event and never allocates on the
// hot path. Unlike the span Tracer it is NOT gated on an enabled flag — it
// runs in every configuration (including the paper-mode golden runs, which
// stay bit-identical because logging never touches the simulation engine) —
// so when a fault-injection recovery fails or a fuzz seed trips an assert,
// the last N protocol events per host are already in memory and can be
// dumped next to the failure artifact without re-running anything.
//
// Records are deliberately tiny (24 bytes, POD): a virtual timestamp, a
// FlightCode, and three untyped operands whose meaning is per-code (see the
// table in DESIGN.md §4h). dump_flight() renders a ring human-readably,
// oldest first, with the drop count of everything the ring evicted.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace ntbshmem::obs {

enum class FlightCode : std::uint16_t {
  kPut = 1,          // a: target_pe, b: bytes
  kGet = 2,          // a: source_pe, b: bytes
  kAtomic = 3,       // a: target_pe, b: atomic op
  kBarrier = 4,      // a: pe
  kFrameTx = 5,      // a: port, b: doorbell bit, c: frame id/seq
  kFrameRx = 6,      // a: port, b: frame kind, c: frame id/seq
  kAck = 7,          // a: port, b: seq
  kNak = 8,          // a: port, b: seq
  kRetransmit = 9,   // a: port, b: retry count, c: seq
  kAckTimeout = 10,  // a: port, b: retry count, c: seq
  kCreditStall = 11, // a: port, c: stall ns
  kDmaError = 12,    // a: port, b: retry count
  kChecksumDrop = 13,// a: port, c: expected checksum
  kDupDrop = 14,     // a: port, b: seq
  kOooDrop = 15,     // a: port, b: got seq, c: expected seq
  kBarrierToken = 16,// a: origin pe, b: direction (0 up, 1 down)
  kDeliveryAck = 17, // a: origin pe, c: op id
};

// Stable lowercase names for dumps.
const char* flight_code_name(FlightCode code);

struct FlightRecord {
  sim::Time t = 0;
  std::uint16_t code = 0;
  std::uint16_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(FlightRecord) == 24, "flight records must stay compact");

class FlightRecorder {
 public:
  // Capacity is rounded up to a power of two (masked indexing on the hot
  // path); 0 asks for the 512-record default.
  explicit FlightRecorder(std::size_t capacity = 512);

  void log(sim::Time t, FlightCode code, std::uint16_t a = 0,
           std::uint32_t b = 0, std::uint64_t c = 0) {
    FlightRecord& r = ring_[static_cast<std::size_t>(head_) & mask_];
    r.t = t;
    r.code = static_cast<std::uint16_t>(code);
    r.a = a;
    r.b = b;
    r.c = c;
    ++head_;
  }

  // Retained records, oldest first.
  std::vector<FlightRecord> recent() const;
  std::uint64_t total() const { return head_; }
  std::size_t capacity() const { return ring_.size(); }
  void clear() { head_ = 0; }

 private:
  std::vector<FlightRecord> ring_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  // total records ever logged
};

// Human-readable dump: one "[t=...ns] code a=%u b=%u c=%llu" line per
// retained record, oldest first, headed by `name` and the evicted count.
void dump_flight(const FlightRecorder& rec, std::string_view name,
                 std::ostream& out);

}  // namespace ntbshmem::obs
