#include "obs/metrics.hpp"

#include <algorithm>

namespace ntbshmem::obs {

std::size_t Histogram::used_buckets() const {
  std::size_t n = kBuckets;
  while (n > 0 && buckets_[n - 1] == 0) --n;
  return n;
}

std::uint64_t percentile_from_buckets(const std::vector<std::uint64_t>& buckets,
                                      std::uint64_t count, std::uint64_t min,
                                      std::uint64_t max, double q) {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The recorded extremes are exact; the buckets only resolve interior
  // quantiles (a one-sample bucket would otherwise report its upper edge).
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the wanted sample, 1-based: q = 0 -> first sample, q = 1 -> last.
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double next = cum + static_cast<double>(buckets[b]);
    if (rank <= next) {
      // Linear interpolation across the bucket's value range by the rank's
      // position within the bucket population.
      const double lo = static_cast<double>(Histogram::bucket_lo(b));
      const double hi = static_cast<double>(Histogram::bucket_hi(b));
      const double frac =
          (rank - cum) / static_cast<double>(buckets[b]);  // (0, 1]
      double v = lo + (hi - lo) * frac;
      // The recorded extremes are exact; never report outside them.
      v = std::clamp(v, static_cast<double>(min), static_cast<double>(max));
      return static_cast<std::uint64_t>(v);
    }
    cum = next;
  }
  return max;
}

std::uint64_t percentile_of(const MetricRow& row, double q) {
  if (row.kind != MetricRow::Kind::kHistogram) return 0;
  return percentile_from_buckets(row.hist_buckets,
                                 static_cast<std::uint64_t>(row.value),
                                 row.hist_min, row.hist_max, q);
}

std::uint64_t Histogram::percentile(double q) const {
  std::vector<std::uint64_t> buckets(buckets_, buckets_ + used_buckets());
  return percentile_from_buckets(buckets, count_, min(), max_, q);
}

void Histogram::absorb(const Histogram& other) {
  absorb(other.buckets_, kBuckets, other.count_, other.sum_, other.min(),
         other.max_);
}

void Histogram::absorb(const std::uint64_t* buckets, std::size_t nbuckets,
                       std::uint64_t count, std::uint64_t sum,
                       std::uint64_t min, std::uint64_t max) {
  if (count == 0) return;
  for (std::size_t b = 0; b < nbuckets && b < kBuckets; ++b) {
    buckets_[b] += buckets[b];
  }
  if (count_ == 0 || min < min_) min_ = min;
  if (max > max_) max_ = max;
  count_ += count;
  sum_ += sum;
}

const MetricRow* Snapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      rows.begin(), rows.end(), name,
      [](const MetricRow& row, std::string_view key) { return row.name < key; });
  if (it == rows.end() || it->name != name) return nullptr;
  return &*it;
}

double Snapshot::total(std::string_view suffix) const {
  double sum = 0.0;
  for (const auto& row : rows) {
    if (row.name.size() >= suffix.size() &&
        std::string_view{row.name}.substr(row.name.size() - suffix.size()) ==
            suffix) {
      sum += row.value;
    }
  }
  return sum;
}

template <typename T>
T* MetricsRegistry::find_or_add(std::deque<Named<T>>& store,
                                std::string_view name) {
  for (auto& entry : store) {
    if (entry.name == name) return &entry.instrument;
  }
  store.push_back(Named<T>{std::string(name), T{}});
  return &store.back().instrument;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  return find_or_add(counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return find_or_add(gauges_, name);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return find_or_add(histograms_, name);
}

void MetricsRegistry::register_probe(std::string_view name,
                                     std::function<double()> fn) {
  for (auto& probe : probes_) {
    if (probe.name == name) {
      probe.fn = std::move(fn);  // component rebuilt: newest source wins
      return;
    }
  }
  probes_.push_back(Probe{std::string(name), std::move(fn)});
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.rows.reserve(instrument_count());
  for (const auto& entry : counters_) {
    MetricRow row;
    row.name = entry.name;
    row.kind = MetricRow::Kind::kCounter;
    row.value = static_cast<double>(entry.instrument.value());
    snap.rows.push_back(std::move(row));
  }
  for (const auto& entry : gauges_) {
    MetricRow row;
    row.name = entry.name;
    row.kind = MetricRow::Kind::kGauge;
    row.value = entry.instrument.value();
    snap.rows.push_back(std::move(row));
  }
  for (const auto& entry : histograms_) {
    MetricRow row;
    row.name = entry.name;
    row.kind = MetricRow::Kind::kHistogram;
    row.value = static_cast<double>(entry.instrument.count());
    row.hist_sum = entry.instrument.sum();
    row.hist_min = entry.instrument.min();
    row.hist_max = entry.instrument.max();
    const std::size_t used = entry.instrument.used_buckets();
    row.hist_buckets.reserve(used);
    for (std::size_t b = 0; b < used; ++b) {
      row.hist_buckets.push_back(entry.instrument.bucket(b));
    }
    snap.rows.push_back(std::move(row));
  }
  for (const auto& probe : probes_) {
    MetricRow row;
    row.name = probe.name;
    row.kind = MetricRow::Kind::kProbe;
    row.value = probe.fn ? probe.fn() : 0.0;
    snap.rows.push_back(std::move(row));
  }
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return snap;
}

// The shared null instruments are write-only sinks: unregistered components
// add into them and nothing ever reads the accumulated garbage back, so the
// mutable statics cannot feed state into any schedule decision.

Counter* MetricsRegistry::null_counter() {
  // detlint:allow(no-mutable-static): write-only null instrument, never read
  static Counter sink;
  return &sink;
}

Gauge* MetricsRegistry::null_gauge() {
  // detlint:allow(no-mutable-static): write-only null instrument, never read
  static Gauge sink;
  return &sink;
}

Histogram* MetricsRegistry::null_histogram() {
  // detlint:allow(no-mutable-static): write-only null instrument, never read
  static Histogram sink;
  return &sink;
}

}  // namespace ntbshmem::obs
