#include "backend/des/des_backend.hpp"

#include <string>

#include "fabric/ring.hpp"
#include "host/memory.hpp"
#include "shmem/runtime.hpp"
#include "shmem/transport.hpp"

namespace ntbshmem::backend {

// ---- DesBackend -------------------------------------------------------------

host::MemoryArena& DesBackend::heap_arena(int pe) {
  const int host = pe / rt_->options().pes_per_host;
  return rt_->fabric().host(host).memory();
}

std::pair<std::uint64_t, std::uint64_t> DesBackend::heap_geometry() const {
  return {rt_->options().symheap_chunk_bytes, rt_->options().symheap_max_bytes};
}

std::unique_ptr<Channel> DesBackend::make_channel(int pe) {
  return std::make_unique<DesChannel>(
      *rt_, rt_->host_transport(pe / rt_->options().pes_per_host), pe);
}

sim::Dur DesBackend::run(shmem::Runtime& rt,
                         const std::function<void()>& pe_main) {
  sim::Engine& engine = rt.engine();
  const sim::Time start = engine.now();
  for (int pe = 0; pe < rt.npes(); ++pe) {
    shmem::Context* ctx = &rt.context(pe);
    engine.spawn("pe" + std::to_string(pe), [ctx, &pe_main] {
      shmem::CurrentContextBinder bind(ctx);
      pe_main();
    });
  }
  engine.run();
  return engine.now() - start;
}

std::span<std::byte> DesBackend::pe_scratch(int pe) {
  if (scratch_.empty()) {
    scratch_.assign(static_cast<std::size_t>(rt_->npes()),
                    std::vector<std::byte>(kPeScratchBytes));
  }
  return scratch_.at(static_cast<std::size_t>(pe));
}

sim::Time DesBackend::now_ns() { return rt_->engine().now(); }
void DesBackend::wait_until_ns(sim::Time t) { rt_->engine().wait_until(t); }
void DesBackend::wait_for_ns(sim::Dur d) { rt_->engine().wait_for(d); }

// ---- DesChannel -------------------------------------------------------------

void DesChannel::put(std::uint64_t heap_offset, std::span<const std::byte> src,
                     int target_pe, int domain) {
  transport_->put(heap_offset, src, target_pe, pe_, domain);
}

void DesChannel::get(std::uint64_t heap_offset, std::span<std::byte> dst,
                     int source_pe) {
  transport_->get(heap_offset, dst, source_pe, pe_);
}

void DesChannel::get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
                         int source_pe, int domain) {
  transport_->get_nbi(heap_offset, dst, source_pe, pe_, domain);
}

void DesChannel::put_signal(std::uint64_t heap_offset,
                            std::span<const std::byte> src,
                            std::uint64_t signal_offset,
                            std::uint64_t signal_value,
                            shmem::AtomicOp signal_op, int target_pe,
                            int domain) {
  transport_->put_signal(heap_offset, src, signal_offset, signal_value,
                         signal_op, target_pe, pe_, domain);
}

std::uint64_t DesChannel::atomic(shmem::AtomicOp op, std::uint64_t heap_offset,
                                 int target_pe, std::uint8_t width,
                                 std::uint64_t operand1,
                                 std::uint64_t operand2) {
  return transport_->atomic(op, heap_offset, target_pe, width, operand1,
                            operand2, pe_);
}

void DesChannel::atomic_post(shmem::AtomicOp op, std::uint64_t heap_offset,
                             int target_pe, std::uint8_t width,
                             std::uint64_t operand1, int domain) {
  transport_->atomic_post(op, heap_offset, target_pe, width, operand1, pe_,
                          domain);
}

void DesChannel::quiet(int domain) { transport_->quiet(domain); }
void DesChannel::fence() { transport_->fence(); }
void DesChannel::barrier() { transport_->barrier(pe_); }
void DesChannel::wait_heap_change() { transport_->wait_heap_change(); }
int DesChannel::allocate_domain() { return transport_->allocate_domain(); }
void DesChannel::yield(sim::Dur pacing) { rt_->engine().wait_for(pacing); }

}  // namespace ntbshmem::backend
