// Discrete-event-simulation backend: the backend::Backend/Channel facade
// over the existing NTB ring fabric and shmem::Transport. Pure adapter — it
// forwards every operation to the host transport unchanged (same domains,
// same origin-PE plumbing, same engine waits), so the DES golden times stay
// bit-identical to the pre-seam runtime (asserted by the workload
// determinism tests).
#pragma once

#include <vector>

#include "backend/backend.hpp"

namespace ntbshmem::shmem {
class Transport;
}

namespace ntbshmem::backend {

class DesBackend : public Backend {
 public:
  // Bound after Runtime built the fabric/transports (the backend facade
  // does not own them; Runtime's construction order is unchanged).
  explicit DesBackend(shmem::Runtime& rt) : rt_(&rt) {}

  Kind kind() const override { return Kind::kSim; }
  host::MemoryArena& heap_arena(int pe) override;
  std::pair<std::uint64_t, std::uint64_t> heap_geometry() const override;
  std::unique_ptr<Channel> make_channel(int pe) override;
  sim::Dur run(shmem::Runtime& rt,
               const std::function<void()>& pe_main) override;
  std::span<std::byte> pe_scratch(int pe) override;
  sim::Time now_ns() override;
  void wait_until_ns(sim::Time t) override;
  void wait_for_ns(sim::Dur d) override;

 private:
  shmem::Runtime* rt_;
  // Per-PE report scratch: ordinary process memory — the DES run loop and
  // its caller share one address space, publication is a plain store.
  std::vector<std::vector<std::byte>> scratch_;
};

// Per-PE adapter over the origin host's shmem::Transport.
class DesChannel : public Channel {
 public:
  DesChannel(shmem::Runtime& rt, shmem::Transport& transport, int pe)
      : rt_(&rt), transport_(&transport), pe_(pe) {}

  void put(std::uint64_t heap_offset, std::span<const std::byte> src,
           int target_pe, int domain) override;
  void get(std::uint64_t heap_offset, std::span<std::byte> dst,
           int source_pe) override;
  void get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
               int source_pe, int domain) override;
  void put_signal(std::uint64_t heap_offset, std::span<const std::byte> src,
                  std::uint64_t signal_offset, std::uint64_t signal_value,
                  shmem::AtomicOp signal_op, int target_pe,
                  int domain) override;
  std::uint64_t atomic(shmem::AtomicOp op, std::uint64_t heap_offset,
                       int target_pe, std::uint8_t width,
                       std::uint64_t operand1, std::uint64_t operand2) override;
  void atomic_post(shmem::AtomicOp op, std::uint64_t heap_offset,
                   int target_pe, std::uint8_t width, std::uint64_t operand1,
                   int domain) override;
  void quiet(int domain) override;
  void fence() override;
  void barrier() override;
  void wait_heap_change() override;
  int allocate_domain() override;
  void yield(sim::Dur pacing) override;

 private:
  shmem::Runtime* rt_;
  shmem::Transport* transport_;
  int pe_;
};

}  // namespace ntbshmem::backend
