#include "backend/shm/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ntbshmem::backend {

namespace {

constexpr std::size_t kPage = 4096;

std::size_t page_align(std::size_t n) { return (n + kPage - 1) & ~(kPage - 1); }

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("shm segment: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Segment::Segment(int npes, std::uint64_t heap_slice_bytes)
    : npes_(npes), slice_(page_align(heap_slice_bytes)) {
  controls_off_ = page_align(sizeof(SegmentHeader));
  heaps_off_ = page_align(controls_off_ +
                          static_cast<std::size_t>(npes_) * sizeof(PeControl));
  total_ = heaps_off_ + static_cast<std::size_t>(npes_) * slice_;

  // A name unique to this process: the object lives under it only for the
  // microseconds until the unlink below, so pid + a per-process counter is
  // collision-free (two Runtimes in one process get distinct counters).
  // detlint:allow(no-mutable-static): per-process shm-name counter; the name must differ between two live Segments in one process and never feeds any deterministic result
  static unsigned g_seq = 0;
  const std::string name = "/ntbshmem." + std::to_string(getpid()) + "." +
                           std::to_string(g_seq++);
  const int fd =
      shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, S_IRUSR | S_IWUSR);
  if (fd < 0) fail("shm_open(" + name + ")");
  if (ftruncate(fd, static_cast<off_t>(total_)) != 0) {
    shm_unlink(name.c_str());
    close(fd);
    fail("ftruncate to " + std::to_string(total_) + " bytes");
  }
  void* map = mmap(nullptr, total_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  // The mapping keeps the object alive for this process and every child
  // forked later; unlinking now means nothing is left in /dev/shm if the
  // run is killed at any point.
  shm_unlink(name.c_str());
  close(fd);
  if (map == MAP_FAILED) fail("mmap of " + std::to_string(total_) + " bytes");
  base_ = static_cast<std::byte*>(map);

  std::memset(base_, 0, total_);
  SegmentHeader& h = header();
  h.magic = kSegmentMagic;
  h.npes = static_cast<std::uint32_t>(npes_);
  h.heap_slice_bytes = slice_;
}

Segment::~Segment() {
  if (base_ != nullptr) munmap(base_, total_);
}

PeControl& Segment::pe(int pe) {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("shm segment: PE out of range");
  }
  return *reinterpret_cast<PeControl*>(
      base_ + controls_off_ + static_cast<std::size_t>(pe) * sizeof(PeControl));
}

std::span<std::byte> Segment::heap(int pe) {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("shm segment: PE out of range");
  }
  return {base_ + heaps_off_ + static_cast<std::size_t>(pe) * slice_, slice_};
}

}  // namespace ntbshmem::backend
