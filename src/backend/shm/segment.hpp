// The shared segment of the real-process backend (DESIGN.md §4j).
//
// PE 0's parent process lays out one POSIX shm object and mmap()s it
// MAP_SHARED *before* forking the PE processes, so every child inherits the
// mapping at the same virtual address — cross-PE puts are plain memcpy into
// the peer's heap slice, no address translation beyond the symmetric-heap
// offset (the same offset addressing as the paper's Fig. 3(b), with the NTB
// BAR window replaced by the segment mapping).
//
//   [SegmentHeader]                 abort flag, barrier generation/count
//   [PeControl x npes]              per-PE doorbell, flight ring, outboxes
//   [heap slice x npes]             page-aligned symmetric-heap storage
//
// The object is shm_unlink()ed immediately after creation: the mapping
// keeps it alive for parent + children, and nothing leaks into /dev/shm if
// the run dies (the name exists only for the fork window of ~0 ms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "obs/flight.hpp"

namespace ntbshmem::backend {

// Records retained per PE flight ring (power of two: masked indexing).
inline constexpr std::size_t kFlightRing = 256;
// Serialized per-PE metrics registry image (counters + histograms of the
// shm data path; a registry row costs ~name + 40 bytes, a histogram ~name +
// 560 bytes, so 32 KiB holds hundreds of instruments).
inline constexpr std::size_t kOutboxBytes = 32 * 1024;
// Mirrors backend::kPeScratchBytes (static_asserted in shm_backend.cpp to
// avoid a backend.hpp include cycle here).
inline constexpr std::size_t kSegScratchBytes = 256;

// Per-PE child exit state, written by the child before _exit.
enum PeStatus : std::uint32_t {
  kPeRunning = 0,
  kPeOk = 1,
  kPeError = 2,
};

// Per-PE control block. Single-writer fields throughout: the owning PE
// writes its own flight ring/outbox/status, remote PEs only touch `notify`
// (with atomic RMWs) — so nothing here needs locks.
struct PeControl {
  // Doorbell futex word: bumped (seq_cst RMW) by every remote write landing
  // in this PE's heap; shmem_wait_until sleeps on it.
  alignas(64) std::uint32_t notify;
  // Count of sleepers on `notify` — producers skip the wake syscall when 0.
  std::uint32_t waiters;
  // Bumped by the owning PE at progress points; the watchdog reads it to
  // tell "slow" from "dead" in diagnostics.
  std::uint32_t heartbeat;
  PeStatus status;
  // The child's exception message (NUL-terminated, truncated to fit).
  char error[192];
  // Flight ring: the PE's last kFlightRing data-path events (POD records,
  // one masked store each). The parent replays them into parent-side
  // obs::FlightRecorders after the run — the post-mortem artifact.
  std::uint64_t flight_head;
  obs::FlightRecord flight[kFlightRing];
  // Metrics outbox: the child's serialized obs::Snapshot (fork gives each
  // child a COW copy of the registry, so this is the only road counter
  // bumps travel back on).
  std::uint32_t outbox_len;
  std::uint32_t outbox_overflow;
  std::byte outbox[kOutboxBytes];
  // Backend::pe_scratch — the workload/conformance result mailbox.
  std::byte scratch[kSegScratchBytes];
};

struct SegmentHeader {
  std::uint64_t magic;
  std::uint32_t npes;
  std::uint32_t pad0;
  std::uint64_t heap_slice_bytes;
  // Abort flag (futex word): set once by the watchdog (peer death/timeout)
  // or by the first failing PE; every bounded wait re-checks it and turns a
  // hung collective into a thrown error.
  alignas(64) std::uint32_t abort_flag;
  // Central generation barrier: arrivals increment `barrier_count`; the
  // last arriver resets the count, bumps `barrier_gen` and wakes everyone
  // sleeping on it. The generation word makes back-to-back barriers safe
  // (a PE racing into barrier N+1 waits on a fresh generation value).
  alignas(64) std::uint32_t barrier_gen;
  std::uint32_t barrier_count;
};

inline constexpr std::uint64_t kSegmentMagic = 0x4e54'4253'484d'3031ull;

// Owner of the mapping. Created (and torn down) by the parent; children
// inherit the mapping via fork and never construct one.
class Segment {
 public:
  // Lays out and zero-fills a segment for `npes` PEs with
  // `heap_slice_bytes` of symmetric heap each. Throws std::runtime_error
  // on shm_open/ftruncate/mmap failure.
  Segment(int npes, std::uint64_t heap_slice_bytes);
  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  SegmentHeader& header() { return *reinterpret_cast<SegmentHeader*>(base_); }
  PeControl& pe(int pe);
  // PE `pe`'s symmetric-heap slice.
  std::span<std::byte> heap(int pe);

  int npes() const { return npes_; }
  std::uint64_t heap_slice() const { return slice_; }
  std::size_t total_bytes() const { return total_; }

 private:
  int npes_;
  std::uint64_t slice_;
  std::size_t total_ = 0;
  std::size_t controls_off_ = 0;
  std::size_t heaps_off_ = 0;
  std::byte* base_ = nullptr;
};

}  // namespace ntbshmem::backend
