#include "backend/shm/shm_backend.hpp"

#include <sys/wait.h>
#include <time.h>  // NOLINT: clock_gettime/nanosleep (POSIX, not <ctime>)
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "backend/shm/futex.hpp"
#include "obs/hub.hpp"
#include "shmem/runtime.hpp"

namespace ntbshmem::backend {

static_assert(kSegScratchBytes == kPeScratchBytes,
              "segment scratch must match the Backend::pe_scratch contract");

namespace {

// Spin this many times on a doorbell/barrier word before paying the futex
// syscall — the spin-then-sleep hybrid: intra-socket wakeups land in the
// spin window, long waits sleep in the kernel.
constexpr int kSpinIters = 4096;
// Bounded futex slice: every sleeper re-checks the abort flag at least this
// often, so watchdog-raised aborts propagate promptly.
constexpr std::int64_t kWaitSliceNs = 10'000'000;  // 10 ms

sim::Time wall_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<sim::Time>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void sleep_ns(std::int64_t ns) {
  if (ns <= 0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ns / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(ns % 1'000'000'000);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

std::int64_t timeout_from_env() {
  const char* env = std::getenv("NTBSHMEM_SHM_TIMEOUT_MS");
  std::int64_t ms = 60'000;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) {
      throw std::invalid_argument(
          "NTBSHMEM_SHM_TIMEOUT_MS must be a positive integer (milliseconds)");
    }
    ms = v;
  }
  return ms * 1'000'000;
}

// ---- Metrics outbox wire format ---------------------------------------------
//
//   u32 nrows, then per row:
//     u8 kind (0 counter, 1 gauge, 2 histogram), u16 name_len, name bytes,
//     counter: u64 value | gauge: double | histogram: u64 count,sum,min,max,
//     u16 nbuckets, nbuckets x u64.
//
// Probes are skipped: they sample parent-owned stats at snapshot time and
// would double-count on merge. Child and parent share one architecture (a
// fork), so no endianness/width concerns.

class Writer {
 public:
  Writer(std::byte* p, std::byte* end) : p_(p), end_(end) {}
  bool fits(std::size_t n) const {
    return static_cast<std::size_t>(end_ - p_) >= n;
  }
  template <typename T>
  void raw(T v) {
    std::memcpy(p_, &v, sizeof(T));
    p_ += sizeof(T);
  }
  void bytes(const void* src, std::size_t n) {
    std::memcpy(p_, src, n);
    p_ += n;
  }
  std::byte* pos() const { return p_; }

 private:
  std::byte* p_;
  std::byte* end_;
};

class Reader {
 public:
  Reader(const std::byte* p, const std::byte* end) : p_(p), end_(end) {}
  bool fits(std::size_t n) const {
    return static_cast<std::size_t>(end_ - p_) >= n;
  }
  template <typename T>
  T raw() {
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  const std::byte* take(std::size_t n) {
    const std::byte* at = p_;
    p_ += n;
    return at;
  }

 private:
  const std::byte* p_;
  const std::byte* end_;
};

void encode_metrics(const obs::Snapshot& snap, PeControl& c) {
  Writer w(c.outbox, c.outbox + kOutboxBytes);
  if (!w.fits(4)) return;
  std::byte* nrows_at = w.pos();
  w.raw<std::uint32_t>(0);
  std::uint32_t nrows = 0;
  bool overflow = false;
  for (const obs::MetricRow& row : snap.rows) {
    if (row.kind == obs::MetricRow::Kind::kProbe) continue;
    std::size_t need = 1 + 2 + row.name.size();
    if (row.kind == obs::MetricRow::Kind::kHistogram) {
      need += 4 * 8 + 2 + row.hist_buckets.size() * 8;
    } else {
      need += 8;
    }
    if (!w.fits(need)) {
      overflow = true;
      break;
    }
    std::uint8_t kind = 0;
    if (row.kind == obs::MetricRow::Kind::kGauge) kind = 1;
    if (row.kind == obs::MetricRow::Kind::kHistogram) kind = 2;
    w.raw<std::uint8_t>(kind);
    w.raw<std::uint16_t>(static_cast<std::uint16_t>(row.name.size()));
    w.bytes(row.name.data(), row.name.size());
    switch (kind) {
      case 0:
        w.raw<std::uint64_t>(static_cast<std::uint64_t>(row.value));
        break;
      case 1:
        w.raw<double>(row.value);
        break;
      default:
        w.raw<std::uint64_t>(static_cast<std::uint64_t>(row.value));
        w.raw<std::uint64_t>(row.hist_sum);
        w.raw<std::uint64_t>(row.hist_min);
        w.raw<std::uint64_t>(row.hist_max);
        w.raw<std::uint16_t>(
            static_cast<std::uint16_t>(row.hist_buckets.size()));
        for (const std::uint64_t b : row.hist_buckets) w.raw<std::uint64_t>(b);
        break;
    }
    ++nrows;
  }
  std::memcpy(nrows_at, &nrows, sizeof(nrows));
  c.outbox_len = static_cast<std::uint32_t>(w.pos() - c.outbox);
  c.outbox_overflow = overflow ? 1 : 0;
}

void decode_metrics_into(obs::MetricsRegistry& reg, const PeControl& c) {
  Reader r(c.outbox, c.outbox + c.outbox_len);
  if (!r.fits(4)) return;
  const std::uint32_t nrows = r.raw<std::uint32_t>();
  for (std::uint32_t i = 0; i < nrows; ++i) {
    if (!r.fits(3)) return;
    const std::uint8_t kind = r.raw<std::uint8_t>();
    const std::uint16_t name_len = r.raw<std::uint16_t>();
    if (!r.fits(name_len)) return;
    const std::string name(reinterpret_cast<const char*>(r.take(name_len)),
                           name_len);
    switch (kind) {
      case 0: {
        if (!r.fits(8)) return;
        reg.counter(name)->add(r.raw<std::uint64_t>());
        break;
      }
      case 1: {
        if (!r.fits(8)) return;
        reg.gauge(name)->set(r.raw<double>());
        break;
      }
      case 2: {
        if (!r.fits(4 * 8 + 2)) return;
        const std::uint64_t count = r.raw<std::uint64_t>();
        const std::uint64_t sum = r.raw<std::uint64_t>();
        const std::uint64_t min = r.raw<std::uint64_t>();
        const std::uint64_t max = r.raw<std::uint64_t>();
        const std::uint16_t nbuckets = r.raw<std::uint16_t>();
        if (!r.fits(static_cast<std::size_t>(nbuckets) * 8)) return;
        std::uint64_t buckets[obs::Histogram::kBuckets] = {};
        for (std::uint16_t b = 0; b < nbuckets; ++b) {
          const std::uint64_t v = r.raw<std::uint64_t>();
          if (b < obs::Histogram::kBuckets) buckets[b] = v;
        }
        reg.histogram(name)->absorb(buckets, obs::Histogram::kBuckets, count,
                                    sum, min, max);
        break;
      }
      default:
        return;  // unknown row kind: stop rather than misparse the rest
    }
  }
}

}  // namespace

// ---- ShmBackend -------------------------------------------------------------

ShmBackend::ShmBackend(shmem::Runtime& rt)
    : rt_(&rt), timeout_ns_(timeout_from_env()) {
  seg_ = std::make_unique<Segment>(rt.npes(),
                                   rt.options().symheap_max_bytes);
  arenas_.reserve(static_cast<std::size_t>(rt.npes()));
  flights_.reserve(static_cast<std::size_t>(rt.npes()));
  for (int pe = 0; pe < rt.npes(); ++pe) {
    arenas_.push_back(std::make_unique<host::MemoryArena>(
        seg_->heap(pe), "pe" + std::to_string(pe) + ".shmheap"));
    flights_.emplace_back(kFlightRing);
  }
  // Parent-side replay targets for the segment flight rings; registering
  // them here means Runtime::dump_flight covers shm runs too. flights_ is
  // fully reserved above, so these addresses are stable.
  for (int pe = 0; pe < rt.npes(); ++pe) {
    rt.obs().flights.emplace_back("pe" + std::to_string(pe),
                                  &flights_[static_cast<std::size_t>(pe)]);
  }
  epoch_ns_ = wall_ns();
}

ShmBackend::~ShmBackend() = default;

host::MemoryArena& ShmBackend::heap_arena(int pe) {
  return *arenas_.at(static_cast<std::size_t>(pe));
}

std::pair<std::uint64_t, std::uint64_t> ShmBackend::heap_geometry() const {
  return {seg_->heap_slice(), seg_->heap_slice()};
}

std::unique_ptr<Channel> ShmBackend::make_channel(int pe) {
  return std::make_unique<ShmChannel>(*this, pe);
}

std::span<std::byte> ShmBackend::pe_scratch(int pe) {
  return {seg_->pe(pe).scratch, kSegScratchBytes};
}

sim::Time ShmBackend::now_ns() { return wall_ns() - epoch_ns_; }
void ShmBackend::wait_until_ns(sim::Time t) { sleep_ns(t - now_ns()); }
void ShmBackend::wait_for_ns(sim::Dur d) { sleep_ns(d); }

sim::Dur ShmBackend::run(shmem::Runtime& rt,
                         const std::function<void()>& pe_main) {
  const int n = rt.npes();
  SegmentHeader& h = seg_->header();
  __atomic_store_n(&h.abort_flag, 0u, __ATOMIC_SEQ_CST);
  for (int pe = 0; pe < n; ++pe) {
    PeControl& c = seg_->pe(pe);
    c.status = kPeRunning;
    c.error[0] = '\0';
    c.flight_head = 0;
    c.outbox_len = 0;
    c.outbox_overflow = 0;
  }
  // Flush stdio before forking so buffered output is not duplicated into
  // every child.
  std::fflush(nullptr);
  const sim::Time t0 = now_ns();
  std::vector<int> pids(static_cast<std::size_t>(n), -1);
  for (int pe = 0; pe < n; ++pe) {
    const pid_t pid = fork();
    if (pid == 0) child_main(pe, pe_main);  // never returns
    if (pid < 0) {
      const int err = errno;
      __atomic_store_n(&h.abort_flag, 1u, __ATOMIC_SEQ_CST);
      futex_wake(&h.barrier_gen, INT_MAX);
      for (int p = 0; p < n; ++p) futex_wake(&seg_->pe(p).notify, INT_MAX);
      kill_and_reap(pids);
      throw std::runtime_error(std::string("shm backend: fork failed: ") +
                               std::strerror(err));
    }
    pids[static_cast<std::size_t>(pe)] = static_cast<int>(pid);
  }
  watchdog(pids);  // throws on any PE failure (after killing survivors)
  const sim::Time t1 = now_ns();
  harvest_flight_rings();
  merge_metrics_outboxes();
  return t1 - t0;
}

void ShmBackend::child_main(int pe, const std::function<void()>& pe_main) {
  PeControl& c = seg_->pe(pe);
  int code = 0;
  try {
    shmem::Context* ctx = &rt_->context(pe);
    shmem::CurrentContextBinder bind(ctx);
    pe_main();
    // Publish this child's COW copy of the metrics registry — the only road
    // its counter bumps travel back to the parent on.
    encode_metrics(rt_->obs().metrics.snapshot(), c);
    __atomic_store_n(&c.status, kPeOk, __ATOMIC_RELEASE);
  } catch (const std::exception& e) {
    std::strncpy(c.error, e.what(), sizeof(c.error) - 1);
    c.error[sizeof(c.error) - 1] = '\0';
    __atomic_store_n(&c.status, kPeError, __ATOMIC_RELEASE);
    code = 1;
  } catch (...) {
    std::strncpy(c.error, "non-std::exception thrown by PE body",
                 sizeof(c.error) - 1);
    __atomic_store_n(&c.status, kPeError, __ATOMIC_RELEASE);
    code = 2;
  }
  if (code != 0) {
    // Fail fast fleet-wide: peers blocked in a barrier or wait_until must
    // see the abort instead of hanging until the watchdog deadline.
    SegmentHeader& h = seg_->header();
    __atomic_store_n(&h.abort_flag, 1u, __ATOMIC_SEQ_CST);
    futex_wake(&h.barrier_gen, INT_MAX);
    for (int p = 0; p < seg_->npes(); ++p) {
      futex_wake(&seg_->pe(p).notify, INT_MAX);
    }
  }
  // _exit, not exit: the child must not run the parent's atexit handlers or
  // destructors (it shares their registrations via fork).
  _exit(code);
}

void ShmBackend::watchdog(std::vector<int>& pids) {
  const int n = static_cast<int>(pids.size());
  int remaining = n;
  const sim::Time deadline = now_ns() + timeout_ns_;
  std::string reason;
  while (remaining > 0 && reason.empty()) {
    bool progressed = false;
    for (int pe = 0; pe < n && reason.empty(); ++pe) {
      int& pid = pids[static_cast<std::size_t>(pe)];
      if (pid < 0) continue;
      int st = 0;
      const pid_t r = waitpid(pid, &st, WNOHANG);
      if (r == 0) continue;
      pid = -1;
      --remaining;
      progressed = true;
      if (r < 0) {
        reason = "waitpid(PE " + std::to_string(pe) +
                 ") failed: " + std::strerror(errno);
      } else if (WIFSIGNALED(st)) {
        reason = "PE " + std::to_string(pe) + " died on signal " +
                 std::to_string(WTERMSIG(st));
      } else if (WEXITSTATUS(st) != 0) {
        const PeControl& c = seg_->pe(pe);
        reason = "PE " + std::to_string(pe) + " failed: " +
                 (c.error[0] != '\0' ? std::string(c.error)
                                     : "exit code " +
                                           std::to_string(WEXITSTATUS(st)));
      }
    }
    if (remaining == 0 && reason.empty()) return;
    if (!progressed && reason.empty()) {
      if (now_ns() > deadline) {
        std::string stuck;
        for (int pe = 0; pe < n; ++pe) {
          if (pids[static_cast<std::size_t>(pe)] < 0) continue;
          if (!stuck.empty()) stuck += ", ";
          stuck += "PE " + std::to_string(pe) + " (heartbeat " +
                   std::to_string(seg_->pe(pe).heartbeat) + ")";
        }
        reason = "liveness timeout after " +
                 std::to_string(timeout_ns_ / 1'000'000) +
                 " ms; still running: " + stuck;
      } else {
        sleep_ns(1'000'000);  // 1 ms supervision tick
      }
    }
  }
  // Failure: raise the abort flag so live children unwind cleanly, give
  // them a grace window, then force-kill and reap whatever is left.
  SegmentHeader& h = seg_->header();
  __atomic_store_n(&h.abort_flag, 1u, __ATOMIC_SEQ_CST);
  futex_wake(&h.barrier_gen, INT_MAX);
  for (int p = 0; p < n; ++p) futex_wake(&seg_->pe(p).notify, INT_MAX);
  kill_and_reap(pids);
  // The first exit the scan happened to reap is often a *secondary* victim:
  // a peer that unwound on the abort flag the real culprit raised. Now that
  // every child is reaped, prefer any PE whose error is not the generic
  // abort echo as the root cause.
  if (reason.find("run aborted") != std::string::npos) {
    for (int pe = 0; pe < n; ++pe) {
      const PeControl& c = seg_->pe(pe);
      if (__atomic_load_n(&c.status, __ATOMIC_ACQUIRE) == kPeError &&
          c.error[0] != '\0' &&
          std::strstr(c.error, "run aborted") == nullptr) {
        reason = "PE " + std::to_string(pe) + " failed: " + c.error;
        break;
      }
    }
  }
  harvest_flight_rings();
  throw std::runtime_error(describe_failure(reason));
}

void ShmBackend::kill_and_reap(std::vector<int>& pids) {
  // Grace: children that see the abort flag throw and _exit on their own.
  const sim::Time grace_end = now_ns() + 500'000'000;
  bool any = true;
  while (any && now_ns() < grace_end) {
    any = false;
    for (int& pid : pids) {
      if (pid < 0) continue;
      int st = 0;
      if (waitpid(pid, &st, WNOHANG) == pid) {
        pid = -1;
      } else {
        any = true;
      }
    }
    if (any) sleep_ns(5'000'000);
  }
  for (int& pid : pids) {
    if (pid < 0) continue;
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    pid = -1;
  }
}

void ShmBackend::harvest_flight_rings() {
  for (int pe = 0; pe < seg_->npes(); ++pe) {
    const PeControl& c = seg_->pe(pe);
    obs::FlightRecorder& rec = flights_[static_cast<std::size_t>(pe)];
    rec.clear();
    const std::uint64_t head = c.flight_head;
    const std::uint64_t count =
        head < kFlightRing ? head : std::uint64_t{kFlightRing};
    for (std::uint64_t i = head - count; i < head; ++i) {
      const obs::FlightRecord& r = c.flight[i & (kFlightRing - 1)];
      rec.log(r.t, static_cast<obs::FlightCode>(r.code), r.a, r.b, r.c);
    }
  }
}

void ShmBackend::merge_metrics_outboxes() {
  for (int pe = 0; pe < seg_->npes(); ++pe) {
    decode_metrics_into(rt_->obs().metrics, seg_->pe(pe));
  }
}

std::string ShmBackend::describe_failure(const std::string& reason) {
  std::ostringstream out;
  out << "shm backend: " << reason << "\n";
  out << "flight recorder (per PE, oldest first):\n";
  for (int pe = 0; pe < seg_->npes(); ++pe) {
    obs::dump_flight(flights_[static_cast<std::size_t>(pe)],
                     "pe" + std::to_string(pe), out);
  }
  return out.str();
}

// ---- ShmChannel -------------------------------------------------------------

ShmChannel::ShmChannel(ShmBackend& be, int pe)
    : be_(&be), seg_(&be.segment()), pe_(pe), npes_(be.runtime().npes()) {
  obs::Hub& hub = be.runtime().obs();
  const std::string prefix = "pe" + std::to_string(pe) + ".shm.";
  puts_ = hub.metrics.counter(prefix + "puts");
  put_bytes_ = hub.metrics.counter(prefix + "put_bytes");
  gets_ = hub.metrics.counter(prefix + "gets");
  get_bytes_ = hub.metrics.counter(prefix + "get_bytes");
  atomics_ = hub.metrics.counter(prefix + "atomics");
  barriers_ = hub.metrics.counter(prefix + "barriers");
  doorbell_wakes_ = hub.metrics.counter(prefix + "doorbell_wakes");
  doorbell_sleeps_ = hub.metrics.counter(prefix + "doorbell_sleeps");
  track_ = hub.tracer.track("shm", "pe" + std::to_string(pe));
  cat_ = hub.tracer.category("shm");
  ev_put_ = hub.tracer.event("put");
  ev_get_ = hub.tracer.event("get");
  ev_atomic_ = hub.tracer.event("atomic");
  ev_barrier_ = hub.tracer.event("barrier");
}

std::byte* ShmChannel::heap_at(int target_pe, std::uint64_t offset,
                               std::uint64_t len, const char* what) {
  if (target_pe < 0 || target_pe >= npes_) {
    throw std::out_of_range(std::string(what) + ": PE out of range");
  }
  std::span<std::byte> heap = seg_->heap(target_pe);
  if (offset > heap.size() || len > heap.size() - offset) {
    throw std::out_of_range(std::string(what) +
                            ": offset/length outside the symmetric heap");
  }
  return heap.data() + offset;
}

void ShmChannel::ring_doorbell(int target_pe) {
  PeControl& c = seg_->pe(target_pe);
  // seq_cst RMW: orders after the release-fenced payload store on this side
  // and pairs with the waiter's acquire load — the waiter that observes the
  // bump also observes the payload.
  __atomic_add_fetch(&c.notify, 1u, __ATOMIC_SEQ_CST);
  if (__atomic_load_n(&c.waiters, __ATOMIC_SEQ_CST) != 0) {
    futex_wake(&c.notify, INT_MAX);
    doorbell_wakes_->inc();
  }
}

void ShmChannel::check_abort() {
  if (__atomic_load_n(&seg_->header().abort_flag, __ATOMIC_ACQUIRE) != 0) {
    throw std::runtime_error(
        "shm backend: run aborted (peer failure or liveness timeout)");
  }
}

void ShmChannel::flight(obs::FlightCode code, std::uint16_t a, std::uint32_t b,
                        std::uint64_t c) {
  PeControl& ctl = seg_->pe(pe_);
  obs::FlightRecord& r = ctl.flight[ctl.flight_head & (kFlightRing - 1)];
  r.t = be_->now_ns();
  r.code = static_cast<std::uint16_t>(code);
  r.a = a;
  r.b = b;
  r.c = c;
  ++ctl.flight_head;
  // Every data-path event doubles as a heartbeat for the watchdog.
  ++ctl.heartbeat;
}

void ShmChannel::put(std::uint64_t heap_offset, std::span<const std::byte> src,
                     int target_pe, int /*domain*/) {
  if (src.empty()) return;
  std::byte* dst = heap_at(target_pe, heap_offset, src.size(), "shm put");
  obs::Tracer& tr = be_->runtime().obs().tracer;
  if (tr.enabled()) tr.begin(track_, cat_, ev_put_, be_->now_ns());
  std::memcpy(dst, src.data(), src.size());
  // Payload visible before any subsequent doorbell/signal store.
  std::atomic_thread_fence(std::memory_order_release);
  ring_doorbell(target_pe);
  puts_->inc();
  put_bytes_->add(src.size());
  flight(obs::FlightCode::kPut, static_cast<std::uint16_t>(target_pe),
         static_cast<std::uint32_t>(src.size()), heap_offset);
  if (tr.enabled()) tr.end(track_, cat_, ev_put_, be_->now_ns());
}

void ShmChannel::get(std::uint64_t heap_offset, std::span<std::byte> dst,
                     int source_pe) {
  if (dst.empty()) return;
  const std::byte* src = heap_at(source_pe, heap_offset, dst.size(), "shm get");
  obs::Tracer& tr = be_->runtime().obs().tracer;
  if (tr.enabled()) tr.begin(track_, cat_, ev_get_, be_->now_ns());
  // Pairs with the producers' release fences: everything a previously
  // observed doorbell bump ordered is visible to this copy.
  std::atomic_thread_fence(std::memory_order_acquire);
  std::memcpy(dst.data(), src, dst.size());
  gets_->inc();
  get_bytes_->add(dst.size());
  flight(obs::FlightCode::kGet, static_cast<std::uint16_t>(source_pe),
         static_cast<std::uint32_t>(dst.size()), heap_offset);
  if (tr.enabled()) tr.end(track_, cat_, ev_get_, be_->now_ns());
}

void ShmChannel::get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
                         int source_pe, int /*domain*/) {
  // Synchronous completion is a conforming nbi implementation.
  get(heap_offset, dst, source_pe);
}

void ShmChannel::put_signal(std::uint64_t heap_offset,
                            std::span<const std::byte> src,
                            std::uint64_t signal_offset,
                            std::uint64_t signal_value,
                            shmem::AtomicOp signal_op, int target_pe,
                            int /*domain*/) {
  if (!src.empty()) {
    std::byte* dst =
        heap_at(target_pe, heap_offset, src.size(), "shm put_signal");
    std::memcpy(dst, src.data(), src.size());
  }
  // Data-before-signal: the release fence orders the payload copy before
  // the signal RMW; a consumer that observes the signal observes the data.
  std::atomic_thread_fence(std::memory_order_release);
  apply_atomic(signal_op, target_pe, signal_offset, 8, signal_value, 0);
  ring_doorbell(target_pe);
  puts_->inc();
  put_bytes_->add(src.size());
  flight(obs::FlightCode::kPut, static_cast<std::uint16_t>(target_pe),
         static_cast<std::uint32_t>(src.size()), heap_offset);
}

template <typename T>
static std::uint64_t amo_builtin(shmem::AtomicOp op, T* p, std::uint64_t op1,
                                 std::uint64_t op2) {
  const T a = static_cast<T>(op1);
  switch (op) {
    case shmem::AtomicOp::kAdd:
    case shmem::AtomicOp::kFetchAdd:
      return __atomic_fetch_add(p, a, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kInc:
    case shmem::AtomicOp::kFetchInc:
      return __atomic_fetch_add(p, T{1}, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kCompareSwap: {
      // operand2 = expected, operand1 = desired (Transport::apply_atomic's
      // convention); returns the old value either way.
      T expected = static_cast<T>(op2);
      __atomic_compare_exchange_n(p, &expected, a, false, __ATOMIC_SEQ_CST,
                                  __ATOMIC_SEQ_CST);
      return expected;
    }
    case shmem::AtomicOp::kSwap:
    case shmem::AtomicOp::kSet:
      return __atomic_exchange_n(p, a, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kFetch:
      return __atomic_load_n(p, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kAnd:
      return __atomic_fetch_and(p, a, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kOr:
      return __atomic_fetch_or(p, a, __ATOMIC_SEQ_CST);
    case shmem::AtomicOp::kXor:
      return __atomic_fetch_xor(p, a, __ATOMIC_SEQ_CST);
  }
  throw std::invalid_argument("shm atomic: unknown op");
}

std::uint64_t ShmChannel::apply_atomic(shmem::AtomicOp op, int target_pe,
                                       std::uint64_t heap_offset,
                                       std::uint8_t width,
                                       std::uint64_t operand1,
                                       std::uint64_t operand2) {
  if (width != 4 && width != 8) {
    throw std::invalid_argument("shm atomic: width must be 4 or 8");
  }
  if (heap_offset % width != 0) {
    throw std::invalid_argument(
        "shm atomic: heap offset must be naturally aligned");
  }
  std::byte* p = heap_at(target_pe, heap_offset, width, "shm atomic");
  if (width == 4) {
    return amo_builtin(op, reinterpret_cast<std::uint32_t*>(p), operand1,
                       operand2);
  }
  return amo_builtin(op, reinterpret_cast<std::uint64_t*>(p), operand1,
                     operand2);
}

std::uint64_t ShmChannel::atomic(shmem::AtomicOp op, std::uint64_t heap_offset,
                                 int target_pe, std::uint8_t width,
                                 std::uint64_t operand1,
                                 std::uint64_t operand2) {
  const std::uint64_t old =
      apply_atomic(op, target_pe, heap_offset, width, operand1, operand2);
  ring_doorbell(target_pe);
  atomics_->inc();
  flight(obs::FlightCode::kAtomic, static_cast<std::uint16_t>(target_pe),
         static_cast<std::uint32_t>(op), heap_offset);
  return old;
}

void ShmChannel::atomic_post(shmem::AtomicOp op, std::uint64_t heap_offset,
                             int target_pe, std::uint8_t width,
                             std::uint64_t operand1, int /*domain*/) {
  if (op == shmem::AtomicOp::kFetch || op == shmem::AtomicOp::kFetchAdd ||
      op == shmem::AtomicOp::kFetchInc ||
      op == shmem::AtomicOp::kCompareSwap || op == shmem::AtomicOp::kSwap) {
    throw std::invalid_argument("atomic_post requires a non-fetching op");
  }
  atomic(op, heap_offset, target_pe, width, operand1, 0);
}

void ShmChannel::quiet(int /*domain*/) {
  // Every operation completed synchronously when it returned; quiet only
  // has to order it for other observers.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void ShmChannel::fence() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void ShmChannel::barrier() {
  check_abort();
  obs::Tracer& tr = be_->runtime().obs().tracer;
  if (tr.enabled()) tr.begin(track_, cat_, ev_barrier_, be_->now_ns());
  SegmentHeader& h = seg_->header();
  const std::uint32_t gen = __atomic_load_n(&h.barrier_gen, __ATOMIC_ACQUIRE);
  if (__atomic_add_fetch(&h.barrier_count, 1u, __ATOMIC_ACQ_REL) ==
      static_cast<std::uint32_t>(npes_)) {
    // Last arriver: reset the count for the next generation *before*
    // releasing anyone (a released PE may re-enter barrier immediately).
    __atomic_store_n(&h.barrier_count, 0u, __ATOMIC_SEQ_CST);
    __atomic_add_fetch(&h.barrier_gen, 1u, __ATOMIC_SEQ_CST);
    futex_wake(&h.barrier_gen, INT_MAX);
  } else {
    const sim::Time deadline = be_->now_ns() + be_->timeout_ns();
    int spins = 0;
    while (__atomic_load_n(&h.barrier_gen, __ATOMIC_ACQUIRE) == gen) {
      check_abort();
      if (++spins < kSpinIters) continue;
      futex_wait(&h.barrier_gen, gen, kWaitSliceNs);
      if (be_->now_ns() > deadline) {
        // Tell the peers (and the watchdog) before unwinding: a barrier
        // that cannot complete means a PE is gone.
        __atomic_store_n(&h.abort_flag, 1u, __ATOMIC_SEQ_CST);
        futex_wake(&h.barrier_gen, INT_MAX);
        for (int p = 0; p < npes_; ++p) {
          futex_wake(&seg_->pe(p).notify, INT_MAX);
        }
        throw std::runtime_error(
            "shm barrier: timed out waiting for peers (peer death?)");
      }
    }
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  barriers_->inc();
  flight(obs::FlightCode::kBarrier, static_cast<std::uint16_t>(pe_));
  if (tr.enabled()) tr.end(track_, cat_, ev_barrier_, be_->now_ns());
}

void ShmChannel::wait_heap_change() {
  PeControl& me = seg_->pe(pe_);
  const std::uint32_t seen = seen_notify_;
  std::uint32_t cur = __atomic_load_n(&me.notify, __ATOMIC_ACQUIRE);
  if (cur != seen) {
    // A write landed since the caller's last predicate check — return and
    // let it re-evaluate (missed-update protection).
    seen_notify_ = cur;
    return;
  }
  for (int i = 0; i < kSpinIters; ++i) {
    cur = __atomic_load_n(&me.notify, __ATOMIC_ACQUIRE);
    if (cur != seen) {
      seen_notify_ = cur;
      return;
    }
  }
  check_abort();
  __atomic_add_fetch(&me.waiters, 1u, __ATOMIC_SEQ_CST);
  doorbell_sleeps_->inc();
  // Bounded slice: spurious returns are fine (caller re-checks), and the
  // abort flag is re-examined at least every slice.
  futex_wait(&me.notify, cur, kWaitSliceNs);
  __atomic_sub_fetch(&me.waiters, 1u, __ATOMIC_SEQ_CST);
  check_abort();
  seen_notify_ = __atomic_load_n(&me.notify, __ATOMIC_ACQUIRE);
}

int ShmChannel::allocate_domain() { return next_domain_++; }

void ShmChannel::yield(sim::Dur pacing) {
  check_abort();
  // Back off for the requested pacing, clamped to keep lock-retry latency
  // reasonable on a wall clock (the DES virtual pacing values are tuned for
  // simulated contention, not real schedulers).
  const std::int64_t ns =
      pacing < 1'000 ? 1'000 : (pacing > 1'000'000 ? 1'000'000 : pacing);
  sleep_ns(ns);
}

}  // namespace ntbshmem::backend
