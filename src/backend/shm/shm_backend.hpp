// Real-process shared-memory backend (DESIGN.md §4j): every PE is a
// fork()ed OS process, the symmetric heaps live in one POSIX shm segment
// laid out before the fork, and puts/gets are memcpy into the peer's mapped
// heap slice with release/acquire fencing. Doorbells are futex words;
// barriers are a central generation futex; a parent-side liveness watchdog
// reaps dead children and turns a hung collective into a clean error with a
// flight-recorder dump.
//
// This is the "what would the protocol cost on real silicon-less hardware"
// counterpart to backend/des: the same shmem API surface (api.hpp, teams,
// contexts, collectives run unchanged), but clocked by CLOCK_MONOTONIC
// instead of the calendar queue — bench_workload --backend=shm emits the
// first wall-clock ntbshmem-slo-v1 numbers of the tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/shm/segment.hpp"
#include "host/memory.hpp"
#include "obs/flight.hpp"
#include "obs/ids.hpp"
#include "obs/metrics.hpp"

namespace ntbshmem::backend {

class ShmBackend : public Backend {
 public:
  explicit ShmBackend(shmem::Runtime& rt);
  ~ShmBackend() override;

  Kind kind() const override { return Kind::kShm; }
  host::MemoryArena& heap_arena(int pe) override;
  // (slice, slice): chunk 0 spans the whole per-PE space, so the heap never
  // grows after the pre-fork collective-scratch allocation and every
  // process can translate every offset without chunk bookkeeping.
  std::pair<std::uint64_t, std::uint64_t> heap_geometry() const override;
  std::unique_ptr<Channel> make_channel(int pe) override;
  sim::Dur run(shmem::Runtime& rt,
               const std::function<void()>& pe_main) override;
  std::span<std::byte> pe_scratch(int pe) override;
  sim::Time now_ns() override;
  void wait_until_ns(sim::Time t) override;
  void wait_for_ns(sim::Dur d) override;

  Segment& segment() { return *seg_; }
  shmem::Runtime& runtime() { return *rt_; }
  // Child-side PE-death/abort timeout (NTBSHMEM_SHM_TIMEOUT_MS).
  std::int64_t timeout_ns() const { return timeout_ns_; }

 private:
  // Child body after fork: bind the PE context, run pe_main, publish the
  // metrics outbox, _exit. Never returns.
  [[noreturn]] void child_main(int pe, const std::function<void()>& pe_main);
  // Parent side: waitpid loop with heartbeat/timeout supervision. Throws
  // (with a flight dump in the message) after killing survivors if any PE
  // dies, exits non-zero, or the deadline passes.
  void watchdog(std::vector<int>& pids);
  void kill_and_reap(std::vector<int>& pids);
  // Replays segment flight rings into the parent-side recorders and merges
  // every PE's metrics outbox into the parent registry.
  void harvest_flight_rings();
  void merge_metrics_outboxes();
  std::string describe_failure(const std::string& reason);

  shmem::Runtime* rt_;
  std::unique_ptr<Segment> seg_;
  std::vector<std::unique_ptr<host::MemoryArena>> arenas_;  // one per PE
  // Parent-side flight recorders ("pe<N>"), registered with the obs hub;
  // filled by replaying the segment rings after each run.
  std::vector<obs::FlightRecorder> flights_;
  sim::Time epoch_ns_ = 0;  // CLOCK_MONOTONIC at construction
  std::int64_t timeout_ns_;
};

// Per-PE endpoint: memcpy + fences into peer heap slices, futex doorbells,
// __atomic RMWs for the AMO set. All operations complete synchronously
// (quiet/fence degenerate to memory fences), which is a conforming —
// maximally strict — implementation of the nbi/domain contract.
class ShmChannel : public Channel {
 public:
  ShmChannel(ShmBackend& be, int pe);

  void put(std::uint64_t heap_offset, std::span<const std::byte> src,
           int target_pe, int domain) override;
  void get(std::uint64_t heap_offset, std::span<std::byte> dst,
           int source_pe) override;
  void get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
               int source_pe, int domain) override;
  void put_signal(std::uint64_t heap_offset, std::span<const std::byte> src,
                  std::uint64_t signal_offset, std::uint64_t signal_value,
                  shmem::AtomicOp signal_op, int target_pe,
                  int domain) override;
  std::uint64_t atomic(shmem::AtomicOp op, std::uint64_t heap_offset,
                       int target_pe, std::uint8_t width,
                       std::uint64_t operand1, std::uint64_t operand2) override;
  void atomic_post(shmem::AtomicOp op, std::uint64_t heap_offset,
                   int target_pe, std::uint8_t width, std::uint64_t operand1,
                   int domain) override;
  void quiet(int domain) override;
  void fence() override;
  void barrier() override;
  void wait_heap_change() override;
  int allocate_domain() override;
  void yield(sim::Dur pacing) override;

 private:
  // Bounds-checked pointer into target_pe's heap slice.
  std::byte* heap_at(int target_pe, std::uint64_t offset, std::uint64_t len,
                     const char* what);
  // Bump target's doorbell (seq_cst RMW) and wake its sleepers, if any.
  void ring_doorbell(int target_pe);
  // Applies an AMO on a 4/8-byte heap word; returns the old value.
  std::uint64_t apply_atomic(shmem::AtomicOp op, int target_pe,
                             std::uint64_t heap_offset, std::uint8_t width,
                             std::uint64_t operand1, std::uint64_t operand2);
  // Throws if the watchdog (or a failing peer) raised the abort flag.
  void check_abort();
  void flight(obs::FlightCode code, std::uint16_t a, std::uint32_t b = 0,
              std::uint64_t c = 0);

  ShmBackend* be_;
  Segment* seg_;
  int pe_;
  int npes_;
  int next_domain_ = 1;
  // Doorbell value consumed by the last wait_heap_change (missed-update
  // detection: a bump between predicate check and wait returns immediately).
  std::uint32_t seen_notify_ = 0;
  // Hot-path instruments (parent registry; children bump COW copies that
  // travel back through the metrics outbox).
  obs::Counter* puts_;
  obs::Counter* put_bytes_;
  obs::Counter* gets_;
  obs::Counter* get_bytes_;
  obs::Counter* atomics_;
  obs::Counter* barriers_;
  obs::Counter* doorbell_wakes_;
  obs::Counter* doorbell_sleeps_;
  // Wall-clock span tracing (behind tracer.enabled(); note records made in
  // a forked child stay in that child — flight rings and metrics are the
  // artifacts that survive the fork).
  obs::TrackId track_;
  obs::CategoryId cat_;
  obs::EventId ev_put_;
  obs::EventId ev_get_;
  obs::EventId ev_atomic_;
  obs::EventId ev_barrier_;
};

}  // namespace ntbshmem::backend
