// Futex doorbells for the shared-memory backend (DESIGN.md §4j).
//
// Every doorbell is a 32-bit word in the mmap'ed segment. Waiters pass the
// value they last observed; the kernel blocks them only while the word still
// holds that value, so a bump-then-wake on the producer side can never be
// missed (the classic futex protocol). All waits are *bounded* — the caller
// supplies a timeout slice and re-checks its predicate plus the segment's
// abort flag on every return — which is what turns a dead peer into a clean
// error instead of a hang (the liveness watchdog sets the abort flag and
// wakes every word).
//
// On non-Linux hosts there is no futex syscall; the fallback sleeps in
// short slices and re-checks the word, trading wakeup latency for
// portability. The protocol above is unchanged.
#pragma once

#include <cstdint>

#include <time.h>  // NOLINT: clock_gettime/nanosleep (POSIX, not <ctime>)

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ntbshmem::backend {

// Blocks while *addr == expected, for at most timeout_ns. Returns after a
// wake, a value change, a signal or the timeout — callers always re-check
// their predicate, so spurious returns are harmless.
inline void futex_wait(std::uint32_t* addr, std::uint32_t expected,
                       std::int64_t timeout_ns) {
#ifdef __linux__
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
  syscall(SYS_futex, addr, FUTEX_WAIT, expected, &ts, nullptr, 0);
#else
  // Poll fallback: sleep one short slice unless the word already moved.
  if (__atomic_load_n(addr, __ATOMIC_ACQUIRE) != expected) return;
  const std::int64_t slice =
      timeout_ns < 1'000'000 ? timeout_ns : std::int64_t{1'000'000};
  timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = static_cast<long>(slice);
  nanosleep(&ts, nullptr);
#endif
}

// Wakes up to `count` waiters blocked on addr (INT32_MAX = everyone).
inline void futex_wake(std::uint32_t* addr, int count) {
#ifdef __linux__
  syscall(SYS_futex, addr, FUTEX_WAKE, count, nullptr, nullptr, 0);
#else
  (void)addr;
  (void)count;  // poll fallback: waiters notice the word change on their own
#endif
}

}  // namespace ntbshmem::backend
