// Backend selection for the OpenSHMEM runtime (DESIGN.md §4j).
//
// Two backends implement the data path behind shmem/api.hpp:
//   kSim — the discrete-event simulated NTB ring fabric (the default, and
//          the only backend with virtual time, fault injection, tracing and
//          the model checker);
//   kShm — real fork()ed processes sharing a POSIX shm segment: puts are
//          memcpy through the mapped peer heap, doorbells are futexes, and
//          every latency is a wall-clock number.
// kAuto defers the choice to the NTBSHMEM_BACKEND environment variable
// ("sim" | "shm"), falling back to kSim — so one binary runs either way.
//
// This header is dependency-free on purpose: RuntimeOptions embeds the enum
// without pulling the backend interfaces into every options consumer.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ntbshmem::backend {

enum class Kind : int {
  kAuto = 0,  // consult NTBSHMEM_BACKEND, default kSim
  kSim = 1,
  kShm = 2,
};

// Resolves kAuto against the NTBSHMEM_BACKEND environment variable; an
// explicit kind passes through unchanged. Throws std::invalid_argument on
// an unrecognized variable value (silent fallback would mask typos in CI).
inline Kind resolve(Kind requested) {
  if (requested != Kind::kAuto) return requested;
  const char* env = std::getenv("NTBSHMEM_BACKEND");
  if (env == nullptr || *env == '\0') return Kind::kSim;
  const std::string v(env);
  if (v == "sim") return Kind::kSim;
  if (v == "shm") return Kind::kShm;
  throw std::invalid_argument("NTBSHMEM_BACKEND must be 'sim' or 'shm', got '" +
                              v + "'");
}

inline const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kAuto: return "auto";
    case Kind::kSim: return "sim";
    case Kind::kShm: return "shm";
  }
  return "unknown";
}

}  // namespace ntbshmem::backend
