// The Backend seam: everything shmem::Context and the collectives need
// from a data-path implementation, abstracted so the DES transport
// (backend/des) and the real-process shared-memory path (backend/shm) run
// the same API surface — api.hpp, teams, contexts, nbi + quiet/fence and
// the collectives are backend-agnostic by construction (DESIGN.md §4j).
//
// A Channel is the per-PE operation endpoint (the shape of the ISI-apex
// shmem_link layer: offset-addressed one-sided ops plus doorbell-backed
// waits). A Backend owns per-PE resources — the arena each symmetric heap
// is carved from, the channels, the per-PE result scratch — and the run
// loop that executes pe_main on every PE (simulated processes on the DES
// engine, fork()ed OS processes on shm).
//
// Time: now_ns/wait_* expose the backend's native clock (virtual ns on the
// engine, CLOCK_MONOTONIC wall ns on shm) so workload pacing code never
// names a clock source directly — the only wall-clock calls in the tree
// stay inside src/backend/shm/ where detlint's path exemption covers them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>

#include "backend/kind.hpp"
#include "shmem/message.hpp"
#include "sim/time.hpp"

namespace ntbshmem::host {
class MemoryArena;
}

namespace ntbshmem::shmem {
class Runtime;
}

namespace ntbshmem::backend {

// Fixed size of Backend::pe_scratch — a POD mailbox big enough for a
// workload ScenarioReport wire image plus conformance-test bookkeeping.
inline constexpr std::size_t kPeScratchBytes = 256;

// Per-PE data-path endpoint. Offsets address the *target PE's* symmetric
// heap (the paper's Fig. 3(b) offset addressing); the origin PE is bound at
// construction. Domains are completion scopes (shmem_ctx_*): quiet(domain)
// drains only that domain's operations, kAllDomains drains everything.
class Channel {
 public:
  static constexpr int kDefaultDomain = 0;
  static constexpr int kAllDomains = -1;

  virtual ~Channel() = default;

  // Locally-blocking put into target_pe's heap (one-sided semantics:
  // returns at local completion; remote completion via quiet()).
  virtual void put(std::uint64_t heap_offset, std::span<const std::byte> src,
                   int target_pe, int domain) = 0;
  // Blocking get from source_pe's heap.
  virtual void get(std::uint64_t heap_offset, std::span<std::byte> dst,
                   int source_pe) = 0;
  // Non-blocking get; completion via quiet(domain). A blocking
  // implementation is conforming.
  virtual void get_nbi(std::uint64_t heap_offset, std::span<std::byte> dst,
                       int source_pe, int domain) = 0;
  // Put then update the signal word, data delivered before the signal.
  virtual void put_signal(std::uint64_t heap_offset,
                          std::span<const std::byte> src,
                          std::uint64_t signal_offset,
                          std::uint64_t signal_value, shmem::AtomicOp signal_op,
                          int target_pe, int domain) = 0;
  // Fetching atomic on a 4/8-byte heap word; returns the previous value.
  virtual std::uint64_t atomic(shmem::AtomicOp op, std::uint64_t heap_offset,
                               int target_pe, std::uint8_t width,
                               std::uint64_t operand1,
                               std::uint64_t operand2) = 0;
  // Fire-and-forget non-fetching atomic, ordered behind prior puts to the
  // same target; drained by quiet(domain).
  virtual void atomic_post(shmem::AtomicOp op, std::uint64_t heap_offset,
                           int target_pe, std::uint8_t width,
                           std::uint64_t operand1, int domain) = 0;

  virtual void quiet(int domain) = 0;
  virtual void fence() = 0;
  // Collective barrier entry for this PE (all PEs; teams/active-set
  // barriers are layered above in shmem/collectives.cpp).
  virtual void barrier() = 0;
  // Blocks until some write may have landed in this PE's heap (the
  // building block of shmem_wait_until; spurious wakeups are fine, callers
  // re-check their predicate).
  virtual void wait_heap_change() = 0;
  // New completion scope for shmem_ctx_create.
  virtual int allocate_domain() = 0;
  // Backoff/pacing point in spin loops (lock acquisition, post-wait
  // reschedule). DES charges virtual time on the engine — golden times
  // depend on it — shm yields the CPU briefly.
  virtual void yield(sim::Dur pacing) = 0;
};

// Backend factory + run loop. One per Runtime; constructed before the
// Contexts (whose heaps live in backend-provided arenas).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual Kind kind() const = 0;

  // Arena PE `pe`'s symmetric-heap chunks are carved from. DES: the
  // simulated host's DRAM arena; shm: a MemoryArena viewing the PE's heap
  // slice of the mapped segment.
  virtual host::MemoryArena& heap_arena(int pe) = 0;

  // Heap geometry (chunk_bytes, max_bytes) for PE heaps. DES passes
  // RuntimeOptions through; shm returns (slice, slice) so chunk 0 spans the
  // whole virtual space and any process can address any offset without
  // growth bookkeeping.
  virtual std::pair<std::uint64_t, std::uint64_t> heap_geometry() const = 0;

  virtual std::unique_ptr<Channel> make_channel(int pe) = 0;

  // Executes pe_main on every PE and returns the elapsed duration in the
  // backend's native clock (virtual ns / wall ns).
  virtual sim::Dur run(shmem::Runtime& rt,
                       const std::function<void()>& pe_main) = 0;

  // Per-PE POD scratch that survives the run loop — under fork this is the
  // only memory a PE's results can travel back through, so workload
  // scenarios publish their per-PE report here on every backend.
  virtual std::span<std::byte> pe_scratch(int pe) = 0;

  // The backend's native clock: virtual ns since engine start (DES) or
  // wall-clock ns since an arbitrary epoch (shm). wait_* block the calling
  // PE without holding shared resources.
  virtual sim::Time now_ns() = 0;
  virtual void wait_until_ns(sim::Time t) = 0;
  virtual void wait_for_ns(sim::Dur d) = 0;
};

}  // namespace ntbshmem::backend
