// Counted FIFO resource (count == 1 gives a fair mutex).
//
// Used for serialized hardware the model must arbitrate: the per-link
// ScratchPad register bank, DMA descriptor slots, bypass staging capacity.
// Fairness is strict FIFO so that the simulation stays deterministic and no
// simulated host can starve another.
#pragma once

#include <cstddef>
#include <deque>
#include <string>

#include "sim/engine.hpp"

namespace ntbshmem::sim {

class Resource {
 public:
  Resource(Engine& engine, std::string name, std::size_t count = 1)
      : engine_(engine), name_(std::move(name)), available_(count),
        capacity_(count) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  // Blocks the calling process until a unit is available (FIFO order).
  void acquire();
  // Non-blocking attempt; returns true on success.
  bool try_acquire();
  // Releases one unit; hands it directly to the longest waiter if any.
  void release();

  std::size_t available() const { return available_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t waiter_count() const { return waiters_.size(); }
  const std::string& name() const { return name_; }

  // RAII ownership of one unit.
  class Guard {
   public:
    explicit Guard(Resource& r) : resource_(&r) { r.acquire(); }
    ~Guard() {
      if (resource_ != nullptr) resource_->release();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard(Guard&& other) noexcept : resource_(other.resource_) {
      other.resource_ = nullptr;
    }

   private:
    Resource* resource_;
  };

 private:
  Engine& engine_;
  std::string name_;
  std::size_t available_;
  std::size_t capacity_;
  std::deque<Process*> waiters_;
};

}  // namespace ntbshmem::sim
