#include "sim/bandwidth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ntbshmem::sim {

namespace {
// A flow is finished once its residual drops below half a byte; the timer
// is armed with ceil rounding so the residual at wake-up is fp noise only.
constexpr double kEpsilonBytes = 0.5;
}  // namespace

BandwidthResource::BandwidthResource(Engine& engine, std::string name,
                                     double capacity_Bps)
    : engine_(engine), name_(std::move(name)), capacity_(capacity_Bps) {
  if (!(capacity_Bps > 0.0)) {
    throw std::invalid_argument("BandwidthResource capacity must be > 0: " +
                                name_);
  }
}

std::shared_ptr<Completion> BandwidthResource::transfer_async(
    std::uint64_t bytes, double flow_cap_Bps) {
  auto completion = std::make_shared<Completion>(engine_, name_ + ".xfer");
  if (!(flow_cap_Bps > 0.0)) {
    throw std::invalid_argument("flow cap must be > 0 on " + name_);
  }
  if (bytes == 0) {
    completion->done = true;
    completion->event.notify_all();
    return completion;
  }
  // Bring existing flows up to date before the new arrival changes rates.
  update();
  if (flows_.empty()) busy_since_ = engine_.now();
  total_bytes_ += bytes;
  flows_.push_back(Flow{static_cast<double>(bytes), flow_cap_Bps, 0.0,
                        completion});
  recompute_rates();
  arm_timer();
  return completion;
}

void BandwidthResource::transfer(std::uint64_t bytes, double flow_cap_Bps) {
  auto completion = transfer_async(bytes, flow_cap_Bps);
  completion->wait();
}

void BandwidthResource::update() {
  const Time now = engine_.now();
  const double dt = to_seconds(now - last_update_);
  last_update_ = now;
  if (dt > 0.0) {
    for (auto& f : flows_) {
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  }
  const bool was_busy = !flows_.empty();
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining < kEpsilonBytes) {
      it->completion->done = true;
      it->completion->event.notify_all();
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (was_busy && flows_.empty()) {
    busy_accum_ += engine_.now() - busy_since_;
  }
}

sim::Dur BandwidthResource::busy_time() const {
  Dur t = busy_accum_;
  if (!flows_.empty()) t += engine_.now() - busy_since_;
  return t;
}

void BandwidthResource::recompute_rates() {
  if (flows_.empty()) return;
  // Water-filling: repeatedly grant the equal share; flows capped below the
  // share take their cap and return the surplus to the pool.
  std::vector<Flow*> open;
  open.reserve(flows_.size());
  for (auto& f : flows_) {
    f.rate = 0.0;
    open.push_back(&f);
  }
  double pool = capacity_;
  bool changed = true;
  while (changed && !open.empty()) {
    changed = false;
    const double share = pool / static_cast<double>(open.size());
    for (auto it = open.begin(); it != open.end();) {
      if ((*it)->cap <= share) {
        (*it)->rate = (*it)->cap;
        pool -= (*it)->cap;
        it = open.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  if (!open.empty()) {
    const double share = pool / static_cast<double>(open.size());
    for (Flow* f : open) f->rate = share;
  }
}

void BandwidthResource::arm_timer() {
  timer_.cancel();
  if (flows_.empty()) return;
  Dur min_eta = std::numeric_limits<Dur>::max();
  for (const auto& f : flows_) {
    assert(f.rate > 0.0);
    const double eta_ns = f.remaining / f.rate * 1e9;
    const Dur eta = std::max<Dur>(1, static_cast<Dur>(std::ceil(eta_ns)));
    min_eta = std::min(min_eta, eta);
  }
  timer_ = engine_.call_after(min_eta, [this] {
    update();
    recompute_rates();
    arm_timer();
  });
}

double BandwidthResource::current_share_Bps() const {
  // Hypothetical share of a new uncapped flow: capacity divided among the
  // current flows plus one, respecting existing caps below that share.
  double pool = capacity_;
  std::vector<double> caps;
  caps.reserve(flows_.size());
  for (const auto& f : flows_) caps.push_back(f.cap);
  std::sort(caps.begin(), caps.end());
  std::size_t remaining = caps.size() + 1;
  for (double cap : caps) {
    const double share = pool / static_cast<double>(remaining);
    if (cap <= share) {
      pool -= cap;
      --remaining;
    }
  }
  return pool / static_cast<double>(remaining);
}

}  // namespace ntbshmem::sim
