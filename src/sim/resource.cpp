#include "sim/resource.hpp"

#include <stdexcept>

namespace ntbshmem::sim {

void Resource::acquire() {
  Process* p = engine_.require_current("Resource::acquire");
  if (available_ > 0 && waiters_.empty()) {
    --available_;
    return;
  }
  waiters_.push_back(p);
  engine_.block_current(p);
  // Ownership was handed to us directly by release(); nothing to decrement.
}

bool Resource::try_acquire() {
  if (available_ > 0 && waiters_.empty()) {
    --available_;
    return true;
  }
  return false;
}

void Resource::release() {
  if (!waiters_.empty()) {
    Process* next = waiters_.front();
    waiters_.pop_front();
    // Hand the unit over without incrementing available_, so nobody can
    // barge in front of the queued waiter.
    engine_.schedule_process(engine_.now(), next);
    return;
  }
  if (available_ >= capacity_) {
    throw std::logic_error("Resource::release over capacity: " + name_);
  }
  ++available_;
}

}  // namespace ntbshmem::sim
