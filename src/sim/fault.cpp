#include "sim/fault.hpp"

#include <cmath>

#include "sim/branch.hpp"
#include "sim/trace.hpp"

namespace ntbshmem::sim {

namespace {

// FNV-1a 64-bit over the site tag and key bytes. std::hash is not used on
// purpose: its value is implementation-defined, and stream identities must
// be stable across platforms for seeds to be shareable in bug reports.
std::uint64_t site_hash(FaultPlan::Site site, const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = (h ^ static_cast<std::uint64_t>(site)) * 0x100000001b3ull;
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

// Probability that at least one of `n` independent per-TLP events with
// probability `p` fires during a transfer.
double per_transfer_prob(double p, std::uint64_t n_tlps) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - p, static_cast<double>(n_tlps));
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed, FaultSpec spec)
    : seed_(seed), spec_(spec) {}

void FaultPlan::arm_one_shot(Site site, const std::string& key, int count) {
  one_shots_[site_hash(site, key)] += count;
}

bool FaultPlan::take_one_shot(Site site, const std::string& key) {
  if (one_shots_.empty()) return false;
  auto it = one_shots_.find(site_hash(site, key));
  if (it == one_shots_.end() || it->second <= 0) return false;
  if (--it->second == 0) one_shots_.erase(it);
  return true;
}

std::uint64_t& FaultPlan::stream(Site site, const std::string& key) {
  const std::uint64_t h = site_hash(site, key);
  // Fold the seed into the initial state so two plans with different seeds
  // produce unrelated sequences at every site.
  return streams_.try_emplace(h, seed_ ^ h ^ 0x6a09e667f3bcc909ull)
      .first->second;
}

bool FaultPlan::roll(Site site, const std::string& key, double prob) {
  if (prob <= 0.0) return false;
  return to_unit(splitmix64(stream(site, key))) < prob;
}

void FaultPlan::set_branch_hook(BranchHook* hook, std::uint32_t site_mask,
                                int fire_budget) {
  hook_ = hook;
  hook_site_mask_ = site_mask;
  fire_budget_ = fire_budget;
  fires_used_ = 0;
}

bool FaultPlan::explore_decision(Site site, const std::string& key) {
  if ((hook_site_mask_ & (1u << static_cast<unsigned>(site))) == 0) {
    return false;
  }
  if (fires_used_ >= fire_budget_) return false;
  if (!hook_->choose_fault(static_cast<int>(site), key)) return false;
  ++fires_used_;
  return true;
}

std::uint32_t FaultPlan::draw_mask(Site site, const std::string& key) {
  // Any nonzero XOR mask corrupts; force the low bit so a zero draw cannot
  // produce a no-op "corruption".
  return static_cast<std::uint32_t>(splitmix64(stream(site, key))) | 1u;
}

void FaultPlan::note(Time now, const std::string& message) {
  if (trace_ != nullptr) trace_->record(now, "fault", message);
}

bool FaultPlan::drop_doorbell(Time now, const std::string& port, int bit) {
  const std::string key = port + ":" + std::to_string(bit);
  if (hook_ != nullptr) {
    // Mask check FIRST: a masked bit (barrier circulation) must not become
    // a branch point — dropping it would be an unrecoverable false deadlock.
    if ((spec_.doorbell_drop_mask & (1u << bit)) == 0) return false;
    if (!explore_decision(Site::kDoorbell, key)) return false;
  } else {
    const bool armed = take_one_shot(Site::kDoorbell, key);
    if (!armed) {
      if ((spec_.doorbell_drop_mask & (1u << bit)) == 0) return false;
      if (!roll(Site::kDoorbell, key, spec_.doorbell_drop)) return false;
    }
  }
  ++stats_.doorbells_dropped;
  note(now, "doorbell drop " + key);
  return true;
}

bool FaultPlan::corrupt_scratchpad(Time now, const std::string& port, int reg,
                                   std::uint32_t* xor_mask) {
  if (hook_ != nullptr) {
    if (!explore_decision(Site::kScratchpad, port)) return false;
  } else if (!take_one_shot(Site::kScratchpad, port) &&
             !roll(Site::kScratchpad, port, spec_.scratchpad_corrupt)) {
    return false;
  }
  *xor_mask = draw_mask(Site::kScratchpad, port);
  ++stats_.scratchpads_corrupted;
  note(now, "scratchpad corrupt " + port + " reg" + std::to_string(reg));
  return true;
}

bool FaultPlan::dma_descriptor_error(Time now, const std::string& port) {
  if (hook_ != nullptr) {
    if (!explore_decision(Site::kDma, port)) return false;
  } else if (!take_one_shot(Site::kDma, port) &&
             !roll(Site::kDma, port, spec_.dma_error)) {
    return false;
  }
  ++stats_.dma_errors;
  note(now, "dma descriptor error " + port);
  return true;
}

Dur FaultPlan::tlp_replay_penalty(Time now, const std::string& wire,
                                  std::uint64_t bytes,
                                  std::uint32_t max_payload) {
  const std::uint64_t payload = max_payload > 0 ? max_payload : 1;
  const std::uint64_t n_tlps = bytes == 0 ? 1 : (bytes + payload - 1) / payload;
  Dur penalty = 0;
  if (hook_ != nullptr) {
    // Explore mode: one branch per transfer (drop-and-replay or clean);
    // the drop/corrupt distinction only differs in trace wording.
    if (explore_decision(Site::kTlp, wire)) {
      penalty = spec_.tlp_replay_ns;
      ++stats_.tlp_replays;
      note(now, "tlp drop replay " + wire);
    }
    return penalty;
  }
  if (take_one_shot(Site::kTlp, wire) ||
      roll(Site::kTlp, wire, per_transfer_prob(spec_.tlp_drop, n_tlps))) {
    penalty += spec_.tlp_replay_ns;
    ++stats_.tlp_replays;
    note(now, "tlp drop replay " + wire);
  }
  if (roll(Site::kTlp, wire, per_transfer_prob(spec_.tlp_corrupt, n_tlps))) {
    penalty += spec_.tlp_replay_ns;
    ++stats_.tlp_replays;
    note(now, "tlp lcrc replay " + wire);
  }
  return penalty;
}

Dur FaultPlan::irq_delivery_delay(Time now, const std::string& controller,
                                  int vector) {
  if (hook_ != nullptr) {
    if (!explore_decision(Site::kIrq, controller)) return 0;
  } else if (!take_one_shot(Site::kIrq, controller) &&
             !roll(Site::kIrq, controller, spec_.irq_delay)) {
    return 0;
  }
  ++stats_.irq_delays;
  note(now, "irq delay " + controller + " vec" + std::to_string(vector));
  return spec_.irq_delay_ns;
}

}  // namespace ntbshmem::sim
