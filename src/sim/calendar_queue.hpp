// Calendar-queue scheduler for the discrete-event engine.
//
// Replaces the binary-heap run queue with a rotating bucketed wheel plus an
// overflow ladder, the classic O(1)-amortized structure for DES event sets
// (R. Brown, CACM 1988; ladder refinement after Tang et al.). The hot path
// of the simulator — schedule at `now + small delta`, dispatch the nearest
// event — becomes an append to a small per-bucket heap and a short cursor
// walk instead of an O(log n) sift through one global heap.
//
// Layout
//   * Wheel: kBuckets buckets, each `1 << width_shift_` ns wide. The wheel
//     covers the chunk window [win_lo_, win_lo_ + kBuckets), where an
//     item's *chunk* is `time >> width_shift_`. Window size == bucket count,
//     so within the window chunk -> bucket is a bijection and a bucket never
//     mixes two different chunks.
//   * Bucket: a std::vector maintained as a binary min-heap on the full
//     dispatch key, so same-bucket items still pop in exact key order.
//   * Overflow ladder: items beyond the window land in rung
//     floor(log2(delta_chunks / kBuckets)) — geometrically wider rungs for
//     geometrically farther futures. Each rung is an unsorted vector with
//     its min/max timestamp tracked; far-future items cost O(1) to park.
//
// Re-anchoring: when the wheel drains, the window jumps to the chunk of the
// earliest remaining item and every rung whose minimum falls inside the new
// window is poured back through place(). Re-inserted items only ever move
// to the wheel or a *nearer* rung, so each item migrates at most
// O(#rungs) times over its lifetime.
//
// Bucket width policy: the width adapts only at re-anchor time (the wheel
// is empty, so re-chunking is safe) to the spread of the rung being poured:
// width = 2^ceil(log2(span / (kBuckets/2))), clamped to
// [2^kMinWidthShift, 2^kMaxWidthShift]. A dense pour spreads across the
// wheel instead of piling into one bucket; a sparse pour widens the window
// instead of spinning the cursor over empty buckets.
//
// Dispatch-order invariance (the property the schedule digests pin): the
// dispatch key (t, tie, seq) is a total order, and pop_min() provably
// returns its global minimum —
//   1. ladder items always have t >= window end (enforced at insert and
//      restored after every re-anchor), so the wheel holds the minimum;
//   2. buckets are visited in ascending chunk order (the cursor rewinds
//      whenever an insert lands behind it), and chunks partition time, so
//      the first non-empty bucket holds the minimum;
//   3. within a bucket the heap pops the exact key minimum.
// Hence the dispatch sequence is bit-identical to the former global binary
// heap for every workload, independent of bucket count or width — those
// only move work between the cursor walk and the per-bucket heaps.
//
// Preconditions: item times are non-negative, and no pushed time precedes
// the most recently popped time (the engine clamps `t < now` to `now`).
// Pushes below the current window origin (legal before the first pop after
// the queue went empty, e.g. timers registered out of order) trigger a full
// rebuild — rare by construction and O(size) when it happens.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace ntbshmem::sim {

// Item must expose a non-negative `.t` (int64 ns). `After(a, b)` returns
// true when `a` dispatches after `b` — the same comparator shape a
// std::priority_queue min-queue uses, so the engine's tie-break comparator
// drops in unchanged.
template <class Item, class After>
class CalendarQueue {
 public:
  CalendarQueue() : rungs_(kMaxRungs) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Item item) {
    const std::uint64_t c = chunk_of(item.t);
    if (size_ == 0) {
      win_lo_ = c;
      cursor_ = c;
    } else if (c < win_lo_) {
      rebuild_below(c);
    }
    ++size_;
    place(std::move(item));
  }

  // Removes and returns the item with the smallest (t, tie, seq) key.
  Item pop_min() {
    assert(size_ > 0);
    while (wheel_count_ == 0) re_anchor();
    while (wheel_[cursor_ & kMask].empty()) {
      ++cursor_;
      assert(cursor_ < win_lo_ + kBuckets);
    }
    std::vector<Item>& b = wheel_[cursor_ & kMask];
    std::pop_heap(b.begin(), b.end(), after_);
    Item item = std::move(b.back());
    b.pop_back();
    --wheel_count_;
    --size_;
    return item;
  }

  // Visits every queued item in unspecified order (wheel buckets are
  // heap-ordered, rungs unsorted). Used by order-insensitive state hashing:
  // the caller must fold items with a commutative combine so the queue's
  // physical layout (which varies with push history) cannot leak into the
  // hash.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const std::vector<Item>& b : wheel_) {
      for (const Item& item : b) fn(item);
    }
    for (const Rung& r : rungs_) {
      for (const Item& item : r.items) fn(item);
    }
  }

  // Structure diagnostics (tests + bench reporting).
  int width_shift() const { return width_shift_; }
  std::size_t overflow_size() const { return size_ - wheel_count_; }
  std::uint64_t re_anchor_count() const { return re_anchors_; }

 private:
  static constexpr int kBucketBits = 9;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::uint64_t kMask = kBuckets - 1;
  static constexpr int kMinWidthShift = 4;   // 16 ns buckets
  static constexpr int kMaxWidthShift = 40;  // ~18-minute buckets
  static constexpr int kInitialWidthShift = 12;  // ~4 us buckets
  static constexpr std::size_t kMaxRungs = 56;   // covers 64-bit chunk deltas

  struct Rung {
    std::vector<Item> items;
    std::int64_t min_t = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_t = std::numeric_limits<std::int64_t>::min();
  };

  std::uint64_t chunk_of(std::int64_t t) const {
    assert(t >= 0);
    return static_cast<std::uint64_t>(t) >> width_shift_;
  }

  static std::size_t rung_index(std::uint64_t delta_chunks) {
    assert(delta_chunks >= kBuckets);
    const std::size_t idx = static_cast<std::size_t>(
        std::bit_width(delta_chunks >> kBucketBits) - 1);
    return std::min(idx, kMaxRungs - 1);
  }

  // Inserts without size bookkeeping or window (re)initialisation; shared
  // by push(), re_anchor() pours and rebuild_below().
  void place(Item item) {
    const std::uint64_t c = chunk_of(item.t);
    assert(c >= win_lo_);
    if (c - win_lo_ < kBuckets) {
      std::vector<Item>& b = wheel_[c & kMask];
      b.push_back(std::move(item));
      std::push_heap(b.begin(), b.end(), after_);
      ++wheel_count_;
      if (c < cursor_) cursor_ = c;
    } else {
      Rung& r = rungs_[rung_index(c - win_lo_)];
      r.min_t = std::min(r.min_t, item.t);
      r.max_t = std::max(r.max_t, item.t);
      r.items.push_back(std::move(item));
    }
  }

  // The wheel drained but rungs still hold items: move the window to the
  // earliest remaining item, re-fit the bucket width to the nearest rung's
  // spread, and pour every rung that now overlaps the window.
  void re_anchor() {
    assert(wheel_count_ == 0 && size_ > 0);
    ++re_anchors_;
    std::int64_t min_t = std::numeric_limits<std::int64_t>::max();
    std::int64_t near_max = std::numeric_limits<std::int64_t>::min();
    for (const Rung& r : rungs_) {
      if (r.items.empty()) continue;
      if (r.min_t < min_t) {
        min_t = r.min_t;
        near_max = r.max_t;
      }
    }
    assert(min_t != std::numeric_limits<std::int64_t>::max());
    // Width policy: fit the nearest rung's span across half the wheel. A
    // zero-span pour (single far timer) keeps the current width rather than
    // collapsing the window.
    if (near_max > min_t) {
      const std::uint64_t span =
          static_cast<std::uint64_t>(near_max - min_t) >> (kBucketBits - 1);
      width_shift_ = std::clamp(static_cast<int>(std::bit_width(span)),
                                kMinWidthShift, kMaxWidthShift);
    }
    win_lo_ = chunk_of(min_t);
    cursor_ = win_lo_;
    const std::uint64_t win_end_chunk = win_lo_ + kBuckets;
    for (Rung& r : rungs_) {
      if (r.items.empty() || chunk_of(r.min_t) >= win_end_chunk) continue;
      pour(r);
    }
    assert(wheel_count_ > 0);  // the min item always lands in the wheel
  }

  void pour(Rung& r) {
    std::vector<Item> drained;
    drained.swap(r.items);
    r.min_t = std::numeric_limits<std::int64_t>::max();
    r.max_t = std::numeric_limits<std::int64_t>::min();
    for (Item& item : drained) place(std::move(item));
  }

  // An insert arrived below the window origin (only possible before the
  // first pop since the queue went empty): rebase the window and re-place
  // everything currently held.
  void rebuild_below(std::uint64_t c) {
    std::vector<Item> all;
    all.reserve(size_);
    for (std::vector<Item>& b : wheel_) {
      for (Item& item : b) all.push_back(std::move(item));
      b.clear();
    }
    wheel_count_ = 0;
    for (Rung& r : rungs_) {
      for (Item& item : r.items) all.push_back(std::move(item));
      r.items.clear();
      r.min_t = std::numeric_limits<std::int64_t>::max();
      r.max_t = std::numeric_limits<std::int64_t>::min();
    }
    win_lo_ = c;
    cursor_ = c;
    for (Item& item : all) place(std::move(item));
  }

  After after_{};
  int width_shift_ = kInitialWidthShift;
  std::uint64_t win_lo_ = 0;   // lowest chunk the wheel currently covers
  std::uint64_t cursor_ = 0;   // next chunk pop_min() will inspect
  std::size_t wheel_count_ = 0;
  std::size_t size_ = 0;
  std::uint64_t re_anchors_ = 0;
  std::array<std::vector<Item>, kBuckets> wheel_;
  std::vector<Rung> rungs_;
};

}  // namespace ntbshmem::sim
