#include "sim/audit.hpp"

namespace ntbshmem::sim {

std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void ScheduleDigest::reset() {
  hash_ = kOffset;
  count_ = 0;
}

void ScheduleDigest::mix(Time t, std::uint64_t seq, DispatchKind kind) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  auto fold = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xffu;
      hash_ *= kPrime;
    }
  };
  fold(static_cast<std::uint64_t>(t));
  fold(seq);
  hash_ ^= static_cast<std::uint64_t>(kind);
  hash_ *= kPrime;
  ++count_;
}

}  // namespace ntbshmem::sim
