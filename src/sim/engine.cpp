#include "sim/engine.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/log.hpp"
#include "sim/branch.hpp"
#include "sim/event.hpp"

namespace ntbshmem::sim {

namespace {
// The process currently executing on this OS thread (kThreads: one per
// backing thread; kFibers: maintained across every switch on the single
// engine thread, and doubles as the argument channel into a fresh fiber's
// trampoline, which ucontext cannot pass parameters to).
// detlint:allow(no-mutable-static): per-OS-thread identity binding for the serialized process model; set/cleared on every handoff, never carries state across runs
thread_local Process* t_current_process = nullptr;

EngineBackend backend_from_env() {
  const char* env = std::getenv("NTBSHMEM_SIM_BACKEND");
  if (env == nullptr || *env == '\0') return EngineBackend::kFibers;
  const std::string_view v(env);
  if (v == "fibers" || v == "fiber") return EngineBackend::kFibers;
  if (v == "threads" || v == "thread") return EngineBackend::kThreads;
  throw std::invalid_argument(
      "NTBSHMEM_SIM_BACKEND must be 'fibers' or 'threads', got: " +
      std::string(v));
}
}  // namespace

Process* current_process() noexcept { return t_current_process; }

// ---- Process ---------------------------------------------------------------

Process::Process(Engine& engine, std::string name, std::function<void()> body,
                 bool daemon)
    : engine_(engine),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon) {
  // Fibers are created lazily at first resume; threads must exist up front
  // so the scheduler has something to release.
  if (engine_.backend_ == EngineBackend::kThreads) start_thread();
}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::run_body_and_finish() {
  if (!killed_) {
    try {
      body_();
    } catch (const ProcessKilled&) {
      // Normal shutdown path: unwound cleanly.
    } catch (...) {
      if (!engine_.first_error_) {
        engine_.first_error_ = std::current_exception();
      }
    }
  }
  mark_finished();
}

void Process::mark_finished() {
  finished_ = true;
  body_ = nullptr;  // release captures promptly — engines run many processes
  if (!daemon_) {
    assert(engine_.live_nondaemon_ > 0);
    engine_.live_nondaemon_--;
  }
  assert(engine_.live_count_ > 0);
  engine_.live_count_--;
}

void Process::start_thread() {
  thread_ = std::thread([this]() {
    resume_.acquire();  // wait for the scheduler to start us
    t_current_process = this;
    run_body_and_finish();
    t_current_process = nullptr;
    engine_.sched_sem_.release();  // hand control back for good
  });
}

void Process::fiber_trampoline() {
  Process* p = t_current_process;  // stashed by Engine::resume pre-switch
  Fiber::on_entry(*p->fiber_);
  p->run_body_and_finish();
  p->fiber_->set_exiting();
  Fiber::switch_to(*p->fiber_, p->engine_.sched_fiber_);
  std::abort();  // a dead fiber can never be resumed
}

void Process::block() {
  if (killed_) {
    // Shutdown already reached this process. If we are unwinding (a
    // destructor called back into the engine while ProcessKilled is in
    // flight), silently return so cleanup can finish; otherwise raise.
    if (std::uncaught_exceptions() == 0) throw ProcessKilled{};
    return;
  }
  if (engine_.backend_ == EngineBackend::kThreads) {
    engine_.sched_sem_.release();
    resume_.acquire();
  } else {
    Fiber::switch_to(*fiber_, engine_.sched_fiber_);
  }
  epoch_++;  // consume: any still-queued wake-up for the old epoch is stale
  if (killed_ && std::uncaught_exceptions() == 0) throw ProcessKilled{};
}

// ---- CallbackHandle --------------------------------------------------------

void CallbackHandle::cancel() {
  if (engine_ != nullptr) engine_->cancel_callback(slot_, gen_);
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine() : Engine(backend_from_env()) {}

Engine::Engine(EngineBackend backend)
    : backend_(backend), fiber_stack_bytes_(Fiber::default_stack_bytes()) {
  // Log lines carry the virtual clock while this engine exists, so printf
  // debugging correlates with trace/metric timestamps. The owner token keeps
  // a dying engine from clobbering a newer one's registration.
  set_log_time_source(this, [this] { return static_cast<long long>(now_); });
}

Engine::~Engine() {
  shutdown();
  clear_log_time_source(this);
}

Process& Engine::spawn(std::string name, std::function<void()> body,
                       bool daemon) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body), daemon));
  Process* p = proc.get();
  processes_.push_back(std::move(proc));
  if (!daemon) live_nondaemon_++;
  live_count_++;
  // First resume happens through the normal queue so spawn order == start
  // order at equal times.
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{now_, seq, tie_of(seq), p, p->epoch_, 0});
  return *p;
}

std::uint32_t Engine::acquire_slot() {
  if (!cb_free_.empty()) {
    const std::uint32_t slot = cb_free_.back();
    cb_free_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(cb_slots_.size());
  cb_slots_.emplace_back();
  alloc_stats_.callback_slots_created++;
  return slot;
}

void Engine::retire_slot(std::uint32_t slot) {
  CallbackSlot& s = cb_slots_[slot];
  s.fn = nullptr;
  s.cancelled = false;
  s.gen++;  // any outstanding handle or queue entry is now stale
  cb_free_.push_back(slot);
}

void Engine::cancel_callback(std::uint32_t slot, std::uint64_t gen) {
  if (slot >= cb_slots_.size()) return;
  CallbackSlot& s = cb_slots_[slot];
  if (s.gen != gen) return;  // already fired or recycled — idempotent no-op
  s.cancelled = true;
}

CallbackHandle Engine::call_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const std::uint32_t slot = acquire_slot();
  CallbackSlot& s = cb_slots_[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  alloc_stats_.callbacks_scheduled++;
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{t, seq, tie_of(seq), nullptr, s.gen, slot});
  return CallbackHandle(this, slot, s.gen);
}

CallbackHandle Engine::call_after(Dur d, std::function<void()> fn) {
  return call_at(now_ + d, std::move(fn));
}

void Engine::schedule_process(Time t, Process* p) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{t, seq, tie_of(seq), p, p->epoch_, 0});
}

void Engine::resume(Process* p) {
  Process* prev = current_;
  current_ = p;
  if (backend_ == EngineBackend::kThreads) {
    p->started_ = true;
    p->resume_.release();
    sched_sem_.acquire();
  } else {
    t_current_process = p;
    if (!p->started_) {
      p->started_ = true;
      p->fiber_ = std::make_unique<Fiber>(&Process::fiber_trampoline,
                                          fiber_stack_bytes_);
    }
    Fiber::switch_to(sched_fiber_, *p->fiber_);
    t_current_process = nullptr;
    // Release the stack (and TSan handle) as soon as a process ends, not
    // at engine teardown — scale runs retire thousands of processes.
    if (p->finished_ && p->fiber_) p->fiber_->release_dead();
  }
  current_ = prev;
}

bool Engine::item_stale(const QueueItem& item) {
  if (item.process == nullptr) {
    CallbackSlot& s = cb_slots_[item.cb_slot];
    if (s.gen != item.epoch_or_gen) return true;  // slot already recycled
    if (s.cancelled) {
      retire_slot(item.cb_slot);
      return true;
    }
    return false;
  }
  return item.process->finished() || item.epoch_or_gen != item.process->epoch_;
}

bool Engine::pop_runnable(QueueItem* out) {
  while (!queue_.empty()) {
    QueueItem item = queue_.pop_min();
    assert(item.t >= now_);
    if (item_stale(item)) continue;
    *out = item;
    return true;
  }
  return false;
}

bool Engine::next_dispatch(QueueItem* out) {
  if (hook_ == nullptr) return pop_runnable(out);
  QueueItem first;
  if (!pop_runnable(&first)) return false;
  // Collect every runnable item queued for the same instant. Items are
  // popped in (t, tie, seq) order, so frontier index 0 is exactly what the
  // unhooked dispatcher would run next.
  std::vector<QueueItem> frontier;
  frontier.push_back(first);
  while (!queue_.empty()) {
    QueueItem item = queue_.pop_min();
    if (item_stale(item)) continue;
    if (item.t != first.t) {
      // Overshot into the next instant; re-queueing at the just-popped
      // time is legal per the calendar queue's preconditions.
      queue_.push(item);
      break;
    }
    frontier.push_back(item);
  }
  std::size_t pick = 0;
  if (frontier.size() > 1) {
    pick = hook_->choose_dispatch(frontier.size());
    if (pick >= frontier.size()) {
      throw std::logic_error("BranchHook::choose_dispatch returned " +
                             std::to_string(pick) + " for a frontier of " +
                             std::to_string(frontier.size()));
    }
  }
  // Non-chosen items go back with their ORIGINAL (t, tie, seq) keys: the
  // residual frontier keeps its relative order and is re-offered on the
  // next dispatch.
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (i != pick) queue_.push(frontier[i]);
  }
  *out = frontier[pick];
  return true;
}

void Engine::run() {
  if (current_ != nullptr) {
    throw std::logic_error("Engine::run() called from inside a process");
  }
  while (live_nondaemon_ > 0) {
    QueueItem item;
    if (!next_dispatch(&item)) throw_deadlock();
    if (item.process == nullptr) {
      CallbackSlot& s = cb_slots_[item.cb_slot];
      now_ = item.t;
      dispatch_count_++;
      if (digest_enabled_) digest_.mix(now_, item.seq, DispatchKind::kCallback);
      // Move out and retire before invoking: the callback may itself
      // schedule (and thus reuse) slots.
      std::function<void()> fn = std::move(s.fn);
      retire_slot(item.cb_slot);
      fn();
      continue;
    }
    Process* p = item.process;
    now_ = item.t;
    dispatch_count_++;
    if (digest_enabled_) digest_.mix(now_, item.seq, DispatchKind::kProcess);
    resume(p);
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

namespace {

std::uint64_t fnv_mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffu)) * 0x100000001b3ull;
    v >>= 8;
  }
  return h;
}

std::uint64_t fnv_mix_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  return (h ^ 0xffu) * 0x100000001b3ull;  // terminator: "ab"+"c" != "a"+"bc"
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

}  // namespace

std::uint64_t Engine::state_hash() const {
  // Per-item hashes are folded with XOR *and* ADD: both are commutative
  // (the calendar queue's physical layout must not matter), and the pair is
  // far harder to cancel than XOR alone (two identical items XOR to zero
  // but still sum). Times are hashed relative to now_ so the same pending
  // work at a different absolute time still collides — the checker prunes
  // on logical state, not wall position.
  std::uint64_t xored = 0;
  std::uint64_t summed = 0;
  std::uint64_t items = 0;
  queue_.for_each([&](const QueueItem& item) {
    if (item.process == nullptr) {
      const CallbackSlot& s = cb_slots_[item.cb_slot];
      if (s.gen != item.epoch_or_gen || s.cancelled) return;  // stale
    } else if (item.process->finished() ||
               item.epoch_or_gen != item.process->epoch_) {
      return;  // stale
    }
    std::uint64_t h = kFnvOffset;
    h = fnv_mix_u64(h, static_cast<std::uint64_t>(item.t - now_));
    h = fnv_mix_u64(h, item.process == nullptr ? 1u : 2u);
    if (item.process != nullptr) h = fnv_mix_str(h, item.process->name());
    xored ^= h;
    summed += h;
    ++items;
  });
  std::uint64_t acc = kFnvOffset;
  acc = fnv_mix_u64(acc, xored);
  acc = fnv_mix_u64(acc, summed);
  acc = fnv_mix_u64(acc, items);
  // Process control state, in spawn order (deterministic across replays of
  // the same workload). Epochs and seq counters are excluded on purpose.
  for (const auto& p : processes_) {
    std::uint64_t h = kFnvOffset;
    h = fnv_mix_str(h, p->name_);
    h = fnv_mix_u64(h, (p->started_ ? 1u : 0u) | (p->finished_ ? 2u : 0u) |
                           (p->daemon_ ? 4u : 0u));
    if (p->waiting_on_ != nullptr) h = fnv_mix_str(h, p->waiting_on_->name());
    acc = fnv_mix_u64(acc, h);
  }
  return acc;
}

void Engine::throw_deadlock() {
  std::ostringstream oss;
  oss << "simulation deadlock at t=" << now_ << "ns; blocked processes:";
  for (const auto& p : processes_) {
    if (p->finished() || p->daemon()) continue;
    oss << " [" << p->name();
    if (p->waiting_on_ != nullptr) oss << " waiting on " << p->waiting_on_->name();
    oss << "]";
  }
  throw SimDeadlock(oss.str());
}

void Engine::wait_until(Time t) {
  Process* p = require_current("wait_until");
  if (t < now_) t = now_;
  schedule_process(t, p);
  p->block();
}

void Engine::wait_for(Dur d) { wait_until(now_ + d); }

void Engine::yield() {
  Process* p = require_current("yield");
  schedule_process(now_, p);
  p->block();
}

Process* Engine::require_current(const char* op) const {
  Process* p = t_current_process;
  if (p == nullptr || &p->engine() != this) {
    throw std::logic_error(std::string("Engine::") + op +
                           " called outside a process of this engine");
  }
  return p;
}

void Engine::shutdown() {
  shutting_down_ = true;
  // Kill every unfinished process: mark, resume, let ProcessKilled unwind
  // its stack so RAII cleanup runs; the process finishes for good.
  for (auto& p : processes_) {
    if (p->finished()) continue;
    p->killed_ = true;
    if (backend_ == EngineBackend::kThreads) {
      p->resume_.release();
      sched_sem_.acquire();
    } else if (!p->started_) {
      // Never entered its fiber — nothing to unwind, no stack was built.
      p->mark_finished();
    } else {
      resume(p.get());
    }
    assert(p->finished());
  }
  // Threads are joined by ~Process; fiber stacks were released on finish.
}

}  // namespace ntbshmem::sim
