#include "sim/engine.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "sim/event.hpp"

namespace ntbshmem::sim {

namespace {
// The process currently executing on this OS thread (one per Process).
// detlint:allow(no-mutable-static): per-OS-thread identity binding for the serialized process model; set/cleared on every handoff, never carries state across runs
thread_local Process* t_current_process = nullptr;
}  // namespace

// ---- Process ---------------------------------------------------------------

Process::Process(Engine& engine, std::string name, std::function<void()> body,
                 bool daemon)
    : engine_(engine), name_(std::move(name)), daemon_(daemon) {
  start_thread(std::move(body));
}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::start_thread(std::function<void()> body) {
  thread_ = std::thread([this, body = std::move(body)]() {
    resume_.acquire();  // wait for the scheduler to start us
    if (!killed_) {
      t_current_process = this;
      try {
        body();
      } catch (const ProcessKilled&) {
        // Normal shutdown path: unwound cleanly.
      } catch (...) {
        if (!engine_.first_error_) engine_.first_error_ = std::current_exception();
      }
      t_current_process = nullptr;
    }
    finished_ = true;
    if (!daemon_) {
      assert(engine_.live_nondaemon_ > 0);
      engine_.live_nondaemon_--;
    }
    engine_.sched_sem_.release();  // hand control back for good
  });
}

void Process::block() {
  if (killed_) {
    // Shutdown already reached this process. If we are unwinding (a
    // destructor called back into the engine while ProcessKilled is in
    // flight), silently return so cleanup can finish; otherwise raise.
    if (std::uncaught_exceptions() == 0) throw ProcessKilled{};
    return;
  }
  engine_.sched_sem_.release();
  resume_.acquire();
  epoch_++;  // consume: any still-queued wake-up for the old epoch is stale
  if (killed_ && std::uncaught_exceptions() == 0) throw ProcessKilled{};
}

// ---- CallbackHandle --------------------------------------------------------

void CallbackHandle::cancel() {
  if (state_) state_->cancelled = true;
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine() {
  // Log lines carry the virtual clock while this engine exists, so printf
  // debugging correlates with trace/metric timestamps. The owner token keeps
  // a dying engine from clobbering a newer one's registration.
  set_log_time_source(this, [this] { return static_cast<long long>(now_); });
}

Engine::~Engine() {
  shutdown();
  clear_log_time_source(this);
}

Process& Engine::spawn(std::string name, std::function<void()> body,
                       bool daemon) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body), daemon));
  Process* p = proc.get();
  processes_.push_back(std::move(proc));
  if (!daemon) live_nondaemon_++;
  // First resume happens through the normal queue so spawn order == start
  // order at equal times.
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{now_, seq, tie_of(seq), p, p->epoch_, nullptr});
  return *p;
}

CallbackHandle Engine::call_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  auto state = std::make_shared<CallbackHandle::State>();
  state->fn = std::move(fn);
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{t, seq, tie_of(seq), nullptr, 0, state});
  return CallbackHandle(state);
}

CallbackHandle Engine::call_after(Dur d, std::function<void()> fn) {
  return call_at(now_ + d, std::move(fn));
}

void Engine::schedule_process(Time t, Process* p) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueItem{t, seq, tie_of(seq), p, p->epoch_, nullptr});
}

void Engine::resume(Process* p) {
  Process* prev = current_;
  current_ = p;
  p->started_ = true;
  p->resume_.release();
  sched_sem_.acquire();
  current_ = prev;
}

void Engine::run() {
  if (current_ != nullptr) {
    throw std::logic_error("Engine::run() called from inside a process");
  }
  while (live_nondaemon_ > 0) {
    if (queue_.empty()) throw_deadlock();
    QueueItem item = queue_.top();
    queue_.pop();
    assert(item.t >= now_);
    if (item.callback) {
      if (item.callback->cancelled || item.callback->fired) continue;
      now_ = item.t;
      if (digest_enabled_) digest_.mix(now_, item.seq, DispatchKind::kCallback);
      item.callback->fired = true;
      item.callback->fn();
      continue;
    }
    Process* p = item.process;
    if (p->finished() || item.epoch != p->epoch_) continue;  // stale wake-up
    now_ = item.t;
    if (digest_enabled_) digest_.mix(now_, item.seq, DispatchKind::kProcess);
    resume(p);
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void Engine::throw_deadlock() {
  std::ostringstream oss;
  oss << "simulation deadlock at t=" << now_ << "ns; blocked processes:";
  for (const auto& p : processes_) {
    if (p->finished() || p->daemon()) continue;
    oss << " [" << p->name();
    if (p->waiting_on_ != nullptr) oss << " waiting on " << p->waiting_on_->name();
    oss << "]";
  }
  throw SimDeadlock(oss.str());
}

void Engine::wait_until(Time t) {
  Process* p = require_current("wait_until");
  if (t < now_) t = now_;
  schedule_process(t, p);
  p->block();
}

void Engine::wait_for(Dur d) { wait_until(now_ + d); }

void Engine::yield() {
  Process* p = require_current("yield");
  schedule_process(now_, p);
  p->block();
}

Process* Engine::require_current(const char* op) const {
  Process* p = t_current_process;
  if (p == nullptr || &p->engine() != this) {
    throw std::logic_error(std::string("Engine::") + op +
                           " called outside a process of this engine");
  }
  return p;
}

std::size_t Engine::live_processes() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

void Engine::shutdown() {
  shutting_down_ = true;
  // Kill every unfinished process: mark, resume, wait for it to exit its
  // thread function (it releases sched_sem_ exactly once when finishing).
  for (auto& p : processes_) {
    if (p->finished()) continue;
    p->killed_ = true;
    p->resume_.release();
    sched_sem_.acquire();
    assert(p->finished());
  }
  // Threads are joined by ~Process.
}

}  // namespace ntbshmem::sim
