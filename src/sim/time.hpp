// Virtual time for the discrete-event simulator.
//
// The clock ticks in integer nanoseconds. Integer time keeps runs exactly
// reproducible: two executions of the same workload produce identical event
// orderings and identical completion timestamps (asserted by
// tests/sim/determinism_test.cpp).
#pragma once

#include <cstdint>

namespace ntbshmem::sim {

// Absolute simulation time (ns since simulation start) and durations (ns).
using Time = std::int64_t;
using Dur = std::int64_t;

inline constexpr Dur kNs = 1;
inline constexpr Dur kUs = 1000;
inline constexpr Dur kMs = 1000 * 1000;
inline constexpr Dur kSec = 1000 * 1000 * 1000;

constexpr Dur nsec(std::int64_t v) { return v; }
constexpr Dur usec(std::int64_t v) { return v * kUs; }
constexpr Dur msec(std::int64_t v) { return v * kMs; }

constexpr double to_seconds(Dur d) { return static_cast<double>(d) * 1e-9; }
constexpr double to_us(Dur d) { return static_cast<double>(d) * 1e-3; }
constexpr double to_ms(Dur d) { return static_cast<double>(d) * 1e-6; }

// Wire/bus time for `bytes` at `bytes_per_sec`, rounded up to the next tick.
// bytes_per_sec must be > 0.
constexpr Dur duration_for_bytes(std::uint64_t bytes, double bytes_per_sec) {
  const double ns = static_cast<double>(bytes) / bytes_per_sec * 1e9;
  const Dur whole = static_cast<Dur>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

}  // namespace ntbshmem::sim
