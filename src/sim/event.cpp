#include "sim/event.hpp"

#include <algorithm>

namespace ntbshmem::sim {

void Event::enqueue_current(Process* p) {
  p->wake_reason_ = WakeReason::kNone;
  p->waiting_on_ = this;
  waiters_.push_back(p);
}

void Event::remove(Process* p) {
  auto it = std::find(waiters_.begin(), waiters_.end(), p);
  if (it != waiters_.end()) waiters_.erase(it);
}

void Event::wait() {
  Process* p = engine_.require_current("Event::wait");
  enqueue_current(p);
  p->block();
  // Woken only via notify (no timeout entry exists); waiters_ already
  // dropped us.
}

bool Event::wait_for(Dur timeout) {
  Process* p = engine_.require_current("Event::wait_for");
  enqueue_current(p);
  engine_.schedule_process(engine_.now() + timeout, p);
  p->block();
  if (p->wake_reason_ == WakeReason::kNotified) return true;
  // Timeout fired first: we are still registered as a waiter.
  remove(p);
  p->waiting_on_ = nullptr;
  return false;
}

void Event::notify_all() {
  while (!waiters_.empty()) notify_one();
}

void Event::notify_one() {
  if (waiters_.empty()) return;
  Process* p = waiters_.front();
  waiters_.pop_front();
  p->waiting_on_ = nullptr;
  p->wake_reason_ = WakeReason::kNotified;
  engine_.schedule_process(engine_.now(), p);
}

}  // namespace ntbshmem::sim
