#include "sim/fiber.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__SANITIZE_ADDRESS__)
#define NTBSHMEM_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define NTBSHMEM_FIBER_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NTBSHMEM_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define NTBSHMEM_FIBER_TSAN 1
#endif
#endif

#if defined(NTBSHMEM_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(NTBSHMEM_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

#if defined(NTBSHMEM_FIBER_FAST_SWITCH)
// The whole context switch: push the System-V callee-saved registers and
// the FP control words onto the current stack, swap stack pointers, pop
// them from the new stack, `ret` to wherever the new fiber last saved
// itself (or to its entry function on first switch — see initial_frame()).
// Caller-saved registers need no help: to the compiler this is an ordinary
// extern call, so it already spilled anything live across it.
extern "C" void ntbshmem_fiber_swap(void** save_sp, void* restore_sp);
asm(R"(
.text
.align 16
.globl ntbshmem_fiber_swap
.type ntbshmem_fiber_swap, @function
ntbshmem_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr (%rsp)
    fnstcw  4(%rsp)
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw   4(%rsp)
    addq  $8, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    ret
.size ntbshmem_fiber_swap, .-ntbshmem_fiber_swap
)");
#endif

namespace ntbshmem::sim {

namespace {
std::size_t page_size() {
  return static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

#if defined(NTBSHMEM_FIBER_FAST_SWITCH)
// Builds the frame ntbshmem_fiber_swap restores on a fiber's first switch:
// zeroed callee-saved registers, the caller's current FP control words
// (fibers inherit the default FP environment), `entry` as the resume
// address, and a null terminator frame above it (entry never returns).
// The resume address sits 16 bytes below the aligned stack top so `ret`
// leaves rsp ≡ 8 (mod 16), exactly as at a normal function entry.
void* initial_frame(void* stack_lo, std::size_t usable, void (*entry)()) {
  auto top = (reinterpret_cast<std::uintptr_t>(stack_lo) + usable) & ~15ULL;
  auto* p = reinterpret_cast<std::uint64_t*>(top);
  p[-1] = 0;                                         // fake caller frame
  p[-2] = reinterpret_cast<std::uint64_t>(entry);    // resume address
  for (int i = 3; i <= 8; ++i) p[-i] = 0;            // rbp,rbx,r12..r15
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  p[-9] = static_cast<std::uint64_t>(mxcsr) |
          (static_cast<std::uint64_t>(fcw) << 32);
  return p - 9;
}
#endif
}  // namespace

Fiber::Fiber() : thread_fiber_(true) {
#if defined(NTBSHMEM_FIBER_ASAN)
  // ASan wants the bounds of the stack being switched *to*; record the
  // thread's native stack so worker fibers can switch back to us.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      stack_lo_ = addr;
      usable_size_ = size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
#if defined(NTBSHMEM_FIBER_TSAN)
  tsan_fiber_ = __tsan_get_current_fiber();
#endif
}

Fiber::Fiber(Entry entry, std::size_t stack_bytes) {
  const std::size_t ps = page_size();
  usable_size_ = ((stack_bytes + ps - 1) / ps) * ps;
  map_size_ = usable_size_ + ps;  // one guard page below the stack
  void* base = mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    throw std::runtime_error("Fiber: mmap of " + std::to_string(map_size_) +
                             "-byte stack failed");
  }
  map_base_ = base;
  if (mprotect(map_base_, ps, PROT_NONE) != 0) {
    munmap(map_base_, map_size_);
    map_base_ = nullptr;
    throw std::runtime_error("Fiber: mprotect of stack guard page failed");
  }
  stack_lo_ = static_cast<char*>(map_base_) + ps;
#if defined(NTBSHMEM_FIBER_FAST_SWITCH)
  sp_ = initial_frame(stack_lo_, usable_size_, entry);
#else
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_lo_;
  ctx_.uc_stack.ss_size = usable_size_;
  ctx_.uc_link = nullptr;  // Entry must switch away, never return.
  makecontext(&ctx_, entry, 0);
#endif
#if defined(NTBSHMEM_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() { release_dead(); }

void Fiber::release_dead() {
#if defined(NTBSHMEM_FIBER_TSAN)
  if (tsan_fiber_ != nullptr && !thread_fiber_) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
  if (!thread_fiber_) tsan_fiber_ = nullptr;
#endif
  if (map_base_ != nullptr) {
    munmap(map_base_, map_size_);
    map_base_ = nullptr;
    stack_lo_ = nullptr;
    usable_size_ = 0;
  }
}

void Fiber::switch_to(Fiber& from, Fiber& to) {
#if defined(NTBSHMEM_FIBER_ASAN)
  // A fiber leaving for the last time passes nullptr so ASan releases its
  // fake-stack allocations instead of preserving them for a return.
  void** fake_stack_save = from.exiting_ ? nullptr : &from.asan_fake_stack_;
  __sanitizer_start_switch_fiber(fake_stack_save, to.stack_lo_,
                                 to.usable_size_);
#endif
#if defined(NTBSHMEM_FIBER_TSAN)
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
#if defined(NTBSHMEM_FIBER_FAST_SWITCH)
  ntbshmem_fiber_swap(&from.sp_, to.sp_);
#else
  if (swapcontext(&from.ctx_, &to.ctx_) != 0) {
    // Cannot throw across contexts safely; a failed swap leaves both
    // stacks in an undefined state.
    std::abort();
  }
#endif
  // Control returned to `from` — possibly from a different fiber than `to`.
#if defined(NTBSHMEM_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(from.asan_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::on_entry(Fiber& self) {
#if defined(NTBSHMEM_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(self.asan_fake_stack_, nullptr, nullptr);
#else
  (void)self;
#endif
}

std::size_t Fiber::default_stack_bytes() {
  constexpr std::size_t kDefault = 256 * 1024;
  constexpr std::size_t kMin = 16 * 1024;
  const char* env = std::getenv("NTBSHMEM_FIBER_STACK_KiB");
  if (env == nullptr || *env == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long kib = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || kib == 0) return kDefault;
  const std::size_t bytes = static_cast<std::size_t>(kib) * 1024;
  return bytes < kMin ? kMin : bytes;
}

}  // namespace ntbshmem::sim
