// Cooperative discrete-event engine with thread-backed processes.
//
// Each simulated actor (an OpenSHMEM PE, an NTB service thread, a DMA
// engine) is a `Process`: a real OS thread whose execution is serialized by
// the engine so that exactly one process runs at a time and the virtual
// clock only advances between process steps. This gives us:
//
//   * blocking APIs with the same shape as the real OpenSHMEM library
//     (shmem_getmem blocks its calling PE),
//   * deterministic execution: the run queue is ordered by (time, sequence),
//     so identical workloads produce identical schedules, and
//   * zero wall-clock dependence: the virtual clock is driven purely by the
//     timing model.
//
// The engine also supports inline callbacks (`call_at`/`call_after`) that
// run in the scheduler context without a thread switch — used for interrupt
// delivery, DMA completion and bandwidth-resource bookkeeping.
//
// Thread-safety: none needed. All processes are serialized by construction;
// engine state is only ever touched by the single active thread.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/audit.hpp"
#include "sim/time.hpp"

namespace ntbshmem::obs {
struct Hub;
}  // namespace ntbshmem::obs

namespace ntbshmem::sim {

class Engine;
class Event;
class FaultPlan;

// Thrown (once) inside a process when the engine shuts down while the
// process is still blocked; unwinds the process stack so RAII cleanup runs.
struct ProcessKilled {};

// Raised by Engine::run() when no timed work remains but non-daemon
// processes are still blocked on events — i.e. the simulation can never
// make progress again.
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

enum class WakeReason : std::uint8_t { kNone, kNotified, kTimeout };

class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  bool finished() const { return finished_; }
  bool daemon() const { return daemon_; }
  Engine& engine() const { return engine_; }

 private:
  friend class Engine;
  friend class Event;

  Process(Engine& engine, std::string name, std::function<void()> body,
          bool daemon);

  void start_thread(std::function<void()> body);
  // Yields control back to the scheduler; returns when rescheduled.
  void block();

  Engine& engine_;
  std::string name_;
  bool daemon_;
  bool finished_ = false;
  bool started_ = false;
  bool killed_ = false;
  // Incremented every time the process is actually resumed; queue entries
  // carry the epoch they were created under so a stale entry (e.g. the
  // timeout of a wait that was satisfied by a notify) is skipped.
  std::uint64_t epoch_ = 0;
  WakeReason wake_reason_ = WakeReason::kNone;
  Event* waiting_on_ = nullptr;  // diagnostics + timeout cleanup
  std::binary_semaphore resume_{0};
  std::thread thread_;
};

// Handle for a scheduled inline callback; cancel() is idempotent and safe
// after the callback has fired.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  void cancel();
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Engine;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit CallbackHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Creates a process; it is scheduled to start at the current time.
  // Daemon processes (service threads) do not keep run() alive.
  Process& spawn(std::string name, std::function<void()> body,
                 bool daemon = false);

  // Runs until every non-daemon process has finished. Throws SimDeadlock if
  // progress becomes impossible; rethrows the first exception escaping any
  // process body. May be called repeatedly (daemons persist between runs).
  void run();

  // Schedules `fn` to run in scheduler context at time `t` (>= now).
  CallbackHandle call_at(Time t, std::function<void()> fn);
  CallbackHandle call_after(Dur d, std::function<void()> fn);

  // ---- Process-context operations (must run inside a spawned process) ----
  void wait_until(Time t);
  void wait_for(Dur d);
  // Reschedules the current process at the current time, after everything
  // already queued for this instant.
  void yield();

  // The process currently executing on this engine (nullptr in scheduler
  // context / outside the simulation).
  Process* current() const { return current_; }

  // Number of processes that have been spawned but not finished.
  std::size_t live_processes() const;

  // ---- Fault injection ------------------------------------------------------
  // Attaches a fault plan that hardware models consult at their injection
  // sites (nullptr detaches). The engine does not own the plan; it must
  // outlive the simulation. No plan attached (or an all-zero plan) means
  // every site is a no-op.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* faults() const { return faults_; }

  // ---- Observability --------------------------------------------------------
  // Attaches the tracing/metrics hub that components consult at construction
  // (nullptr detaches). Like the fault plan, the hub is not owned and must
  // outlive the simulation; no hub attached means components fall back to
  // the shared null instruments — the zero-cost path.
  void attach_obs(obs::Hub* hub) { obs_ = hub; }
  obs::Hub* obs() const { return obs_; }

  // ---- Schedule auditing ----------------------------------------------------
  // Opt-in FNV digest of the dispatched (time, seq, kind) event stream; see
  // sim/audit.hpp. Enabling resets the accumulator. Zero-cost when off.
  void enable_schedule_digest(bool on = true) {
    digest_enabled_ = on;
    digest_.reset();
  }
  bool schedule_digest_enabled() const { return digest_enabled_; }
  const ScheduleDigest& schedule_digest() const { return digest_; }

  // Debug mode: permute the FIFO tie-break of same-timestamp queue entries
  // with a seeded bijection (seed 0 restores exact FIFO order). Applies to
  // entries pushed from this call on, so set it before spawning the
  // workload. Any seed yields a schedule that is still fully deterministic;
  // only the ordering of same-time dispatches changes. Simulation results
  // that are allowed to depend on FIFO order (event wake-up order, spawn
  // start order) may move — SHMEM-visible state must not (DESIGN.md §4d).
  void set_tiebreak_permutation(std::uint64_t seed) { tiebreak_seed_ = seed; }
  std::uint64_t tiebreak_permutation() const { return tiebreak_seed_; }

  // ---- Low-level primitives for building synchronization objects ----------
  // (used by Event/Resource/BandwidthResource; not for application code)

  // Returns the current process, throwing std::logic_error (naming `op`)
  // when called outside a process of this engine.
  Process* require_current(const char* op) const;
  // Enqueues a wake-up for `p` at time `t` tagged with its current epoch.
  // The wake-up is ignored if `p` is resumed by other means first.
  void schedule_process(Time t, Process* p);
  // Parks `p` (must be the current process) until schedule_process resumes
  // it — the building block for custom blocking primitives.
  void block_current(Process* p) { p->block(); }

 private:
  friend class Process;
  friend class Event;

  struct QueueItem {
    Time t;
    std::uint64_t seq;
    // Tie-break key for same-time entries: equals seq (FIFO) unless a
    // tie-break permutation is active, in which case it is a seeded
    // bijection of seq — unique, so the order stays total and repeatable.
    std::uint64_t tie;
    // Exactly one of the two below is set.
    Process* process = nullptr;
    std::uint64_t epoch = 0;  // valid when process != nullptr
    std::shared_ptr<CallbackHandle::State> callback;
  };
  struct QueueCmp {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.t != b.t) return a.t > b.t;  // min-heap on time
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;  // unreachable while tie is a bijection of seq
    }
  };
  std::uint64_t tie_of(std::uint64_t seq) const {
    return tiebreak_seed_ == 0 ? seq : splitmix64_mix(seq ^ tiebreak_seed_);
  }

  // Transfers control to `p` and waits until it yields back.
  void resume(Process* p);
  void shutdown();
  [[noreturn]] void throw_deadlock();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueCmp> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t live_nondaemon_ = 0;
  Process* current_ = nullptr;
  FaultPlan* faults_ = nullptr;
  obs::Hub* obs_ = nullptr;
  std::binary_semaphore sched_sem_{0};
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
  bool digest_enabled_ = false;
  ScheduleDigest digest_;
  std::uint64_t tiebreak_seed_ = 0;
};

}  // namespace ntbshmem::sim
