// Cooperative discrete-event engine with fiber-backed processes.
//
// Each simulated actor (an OpenSHMEM PE, an NTB service thread, a DMA
// engine) is a `Process`: a cooperative execution context the engine
// serializes so that exactly one process runs at a time and the virtual
// clock only advances between process steps. This gives us:
//
//   * blocking APIs with the same shape as the real OpenSHMEM library
//     (shmem_getmem blocks its calling PE),
//   * deterministic execution: the run queue dispatches in (time, sequence)
//     order, so identical workloads produce identical schedules, and
//   * zero wall-clock dependence: the virtual clock is driven purely by the
//     timing model.
//
// Two backends implement the process mechanics behind the same API:
//
//   * kFibers (default): stackful ucontext fibers with guard-paged stacks
//     (sim/fiber.hpp). A process switch is one user-space context swap, so
//     the engine scales to thousands of processes — 1024-host fabric
//     sweeps run where the thread backend thrashes (bench_sim_engine).
//   * kThreads: the original OS-thread-per-process backend, serialized by
//     semaphore handoffs. Kept as the before/after ablation baseline and
//     selectable with NTBSHMEM_SIM_BACKEND=threads.
//
// Both produce bit-identical schedules (same dispatch order, same schedule
// digests); only wall-clock cost differs. The run queue is a calendar
// queue (sim/calendar_queue.hpp) whose dispatch order is provably the same
// (time, tie, seq) total order a binary heap yields.
//
// The engine also supports inline callbacks (`call_at`/`call_after`) that
// run in scheduler context without a context switch — used for interrupt
// delivery, DMA completion and bandwidth-resource bookkeeping. Callback
// state is pooled: the hot path (a DMA completion timer re-armed per
// segment) recycles a slot instead of heap-allocating per callback.
//
// Thread-safety: none needed. All processes are serialized by
// construction; engine state is only ever touched by the single active
// context.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/audit.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace ntbshmem::obs {
struct Hub;
}  // namespace ntbshmem::obs

namespace ntbshmem::sim {

class BranchHook;
class Engine;
class Event;
class FaultPlan;

// Thrown (once) inside a process when the engine shuts down while the
// process is still blocked; unwinds the process stack so RAII cleanup runs.
struct ProcessKilled {};

// Raised by Engine::run() when no timed work remains but non-daemon
// processes are still blocked on events — i.e. the simulation can never
// make progress again.
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

enum class WakeReason : std::uint8_t { kNone, kNotified, kTimeout };

// How Process execution contexts are implemented; see the header comment.
enum class EngineBackend : std::uint8_t { kFibers, kThreads };

class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  bool finished() const { return finished_; }
  bool daemon() const { return daemon_; }
  Engine& engine() const { return engine_; }

  // Opaque process-local binding slot for upper layers (the SHMEM runtime
  // parks its per-PE Context here). Process-local, NOT thread-local: under
  // the fiber backend every process shares one OS thread, so identity that
  // must follow a process across blocks has to live on the Process itself.
  void set_user_binding(void* b) { user_binding_ = b; }
  void* user_binding() const { return user_binding_; }

 private:
  friend class Engine;
  friend class Event;

  Process(Engine& engine, std::string name, std::function<void()> body,
          bool daemon);

  void start_thread();  // kThreads: launch the backing OS thread
  // Yields control back to the scheduler; returns when rescheduled.
  void block();
  // Runs the body with the shared exception protocol, then does the
  // finished-process accounting. Both backends funnel through here.
  void run_body_and_finish();
  void mark_finished();
  // Fiber entry point; reads the process to start from the engine's
  // current-process binding (set by Engine::resume before the switch).
  static void fiber_trampoline();

  Engine& engine_;
  std::string name_;
  std::function<void()> body_;  // consumed on start; empty afterwards
  bool daemon_;
  bool finished_ = false;
  bool started_ = false;
  bool killed_ = false;
  // Incremented every time the process is actually resumed; queue entries
  // carry the epoch they were created under so a stale entry (e.g. the
  // timeout of a wait that was satisfied by a notify) is skipped.
  std::uint64_t epoch_ = 0;
  WakeReason wake_reason_ = WakeReason::kNone;
  Event* waiting_on_ = nullptr;  // diagnostics + timeout cleanup
  // kFibers: created lazily on first resume (a process killed before it
  // ever ran needs no stack); stack released eagerly on finish.
  std::unique_ptr<Fiber> fiber_;
  // kThreads only.
  std::binary_semaphore resume_{0};
  std::thread thread_;
  void* user_binding_ = nullptr;  // see set_user_binding()
};

// The process currently executing on the calling OS thread, or nullptr in
// scheduler/callback context. Identical semantics under both backends: the
// binding is set just before a process runs and cleared when it yields.
Process* current_process() noexcept;

// Handle for a scheduled inline callback; cancel() is idempotent and safe
// after the callback has fired. The handle indexes the engine's pooled
// slot table with a generation tag, so it must not outlive the engine
// (every current holder — bandwidth timers, transport retransmit timers —
// already lives inside the engine's lifetime).
class CallbackHandle {
 public:
  CallbackHandle() = default;
  void cancel();
  bool valid() const { return engine_ != nullptr; }

 private:
  friend class Engine;
  CallbackHandle(Engine* engine, std::uint32_t slot, std::uint64_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Engine {
 public:
  // Default backend: NTBSHMEM_SIM_BACKEND ("fibers" | "threads"), fibers
  // when unset. The explicit-backend overload pins it programmatically
  // (used by bench_sim_engine's ablation and the backend-parity tests).
  Engine();
  explicit Engine(EngineBackend backend);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  EngineBackend backend() const { return backend_; }

  // Creates a process; it is scheduled to start at the current time.
  // Daemon processes (service threads) do not keep run() alive.
  Process& spawn(std::string name, std::function<void()> body,
                 bool daemon = false);

  // Runs until every non-daemon process has finished. Throws SimDeadlock if
  // progress becomes impossible; rethrows the first exception escaping any
  // process body. May be called repeatedly (daemons persist between runs).
  void run();

  // Schedules `fn` to run in scheduler context at time `t` (>= now).
  CallbackHandle call_at(Time t, std::function<void()> fn);
  CallbackHandle call_after(Dur d, std::function<void()> fn);

  // ---- Process-context operations (must run inside a spawned process) ----
  void wait_until(Time t);
  void wait_for(Dur d);
  // Reschedules the current process at the current time, after everything
  // already queued for this instant.
  void yield();

  // The process currently executing on this engine (nullptr in scheduler
  // context / outside the simulation).
  Process* current() const { return current_; }

  // Number of processes that have been spawned but not finished. O(1):
  // maintained at spawn/finish, consulted by deadlock diagnostics and
  // tests.
  std::size_t live_processes() const { return live_count_; }

  // Total queue items actually dispatched (processes resumed + callbacks
  // fired; stale wake-ups and cancelled callbacks excluded — the same
  // stream the schedule digest folds). Drives events/sec in
  // bench_sim_engine.
  std::uint64_t dispatch_count() const { return dispatch_count_; }

  // Usable stack size for this engine's fibers (NTBSHMEM_FIBER_STACK_KiB,
  // read once at construction).
  std::size_t fiber_stack_bytes() const { return fiber_stack_bytes_; }

  // ---- Allocation accounting ------------------------------------------------
  // The callback pool's whole point: slots_created stays O(peak
  // concurrency) while callbacks_scheduled grows with the workload. The
  // old implementation heap-allocated once per scheduled callback.
  struct AllocStats {
    std::uint64_t callback_slots_created = 0;
    std::uint64_t callbacks_scheduled = 0;
  };
  const AllocStats& alloc_stats() const { return alloc_stats_; }

  // ---- Fault injection ------------------------------------------------------
  // Attaches a fault plan that hardware models consult at their injection
  // sites (nullptr detaches). The engine does not own the plan; it must
  // outlive the simulation. No plan attached (or an all-zero plan) means
  // every site is a no-op.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* faults() const { return faults_; }

  // ---- Observability --------------------------------------------------------
  // Attaches the tracing/metrics hub that components consult at construction
  // (nullptr detaches). Like the fault plan, the hub is not owned and must
  // outlive the simulation; no hub attached means components fall back to
  // the shared null instruments — the zero-cost path.
  void attach_obs(obs::Hub* hub) { obs_ = hub; }
  obs::Hub* obs() const { return obs_; }

  // ---- Schedule auditing ----------------------------------------------------
  // Opt-in FNV digest of the dispatched (time, seq, kind) event stream; see
  // sim/audit.hpp. Enabling resets the accumulator. Zero-cost when off.
  void enable_schedule_digest(bool on = true) {
    digest_enabled_ = on;
    digest_.reset();
  }
  bool schedule_digest_enabled() const { return digest_enabled_; }
  const ScheduleDigest& schedule_digest() const { return digest_; }

  // Debug mode: permute the FIFO tie-break of same-timestamp queue entries
  // with a seeded bijection (seed 0 restores exact FIFO order). Applies to
  // entries pushed from this call on, so set it before spawning the
  // workload. Any seed yields a schedule that is still fully deterministic;
  // only the ordering of same-time dispatches changes. Simulation results
  // that are allowed to depend on FIFO order (event wake-up order, spawn
  // start order) may move — SHMEM-visible state must not (DESIGN.md §4d).
  void set_tiebreak_permutation(std::uint64_t seed) { tiebreak_seed_ = seed; }
  std::uint64_t tiebreak_permutation() const { return tiebreak_seed_; }

  // ---- Exploration (sim/branch.hpp, tools/mck) -----------------------------
  // Installs a branch hook that picks among same-timestamp runnable queue
  // items instead of the (tie, seq) FIFO order (nullptr detaches — the
  // default, zero-cost path). With a hook installed the dispatcher collects
  // the whole same-timestamp runnable frontier before each dispatch and asks
  // the hook to choose; a hook that always returns 0 reproduces the unhooked
  // schedule exactly (same dispatch order, same digests). The hook is not
  // owned and must outlive the run.
  void set_branch_hook(BranchHook* hook) { hook_ = hook; }
  BranchHook* branch_hook() const { return hook_; }

  // Order-insensitive FNV hash of the engine's schedulable state: every
  // non-stale queue item folded as (t - now, kind, process name) with a
  // commutative combine (so the calendar queue's physical layout cannot
  // leak in), plus each live process's (name, started, waiting-on event).
  // Path-dependent counters (seq, epoch, dispatch_count) are deliberately
  // excluded so that two interleavings reaching the same logical state
  // collide — that collision is exactly what lets the model checker prune
  // revisits. Used by mck together with the transport/heap hashes.
  std::uint64_t state_hash() const;

  // Kills every unfinished process (ProcessKilled unwinds each stack so
  // RAII cleanup runs). Idempotent; invoked by the destructor, public so
  // owners can tear processes down while their captured state still lives.
  void shutdown();

  // ---- Low-level primitives for building synchronization objects ----------
  // (used by Event/Resource/BandwidthResource; not for application code)

  // Returns the current process, throwing std::logic_error (naming `op`)
  // when called outside a process of this engine.
  Process* require_current(const char* op) const;
  // Enqueues a wake-up for `p` at time `t` tagged with its current epoch.
  // The wake-up is ignored if `p` is resumed by other means first.
  void schedule_process(Time t, Process* p);
  // Parks `p` (must be the current process) until schedule_process resumes
  // it — the building block for custom blocking primitives.
  void block_current(Process* p) { p->block(); }

 private:
  friend class Process;
  friend class Event;
  friend class CallbackHandle;

  struct QueueItem {
    Time t;
    std::uint64_t seq;
    // Tie-break key for same-time entries: equals seq (FIFO) unless a
    // tie-break permutation is active, in which case it is a seeded
    // bijection of seq — unique, so the order stays total and repeatable.
    std::uint64_t tie;
    // nullptr means the entry is a pooled callback (cb_slot below).
    Process* process = nullptr;
    // Process epoch when process != nullptr; callback slot generation
    // otherwise — either way, a staleness tag checked at dispatch.
    std::uint64_t epoch_or_gen = 0;
    std::uint32_t cb_slot = 0;
  };
  struct QueueCmp {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.t != b.t) return a.t > b.t;  // min-queue on time
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;  // unreachable while tie is a bijection of seq
    }
  };
  std::uint64_t tie_of(std::uint64_t seq) const {
    return tiebreak_seed_ == 0 ? seq : splitmix64_mix(seq ^ tiebreak_seed_);
  }

  // Pooled storage behind call_at; see CallbackHandle. `gen` bumps when the
  // slot is recycled, so stale handles and queue entries are no-ops.
  struct CallbackSlot {
    std::function<void()> fn;
    std::uint64_t gen = 0;
    bool cancelled = false;
  };
  std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t slot);
  void cancel_callback(std::uint32_t slot, std::uint64_t gen);

  // Transfers control to `p` and waits until it yields back.
  void resume(Process* p);
  [[noreturn]] void throw_deadlock();

  // True when the item can no longer dispatch (recycled/cancelled callback
  // slot, finished process, stale epoch). Retires cancelled callback slots
  // as a side effect, exactly like the old inline dispatch loop did.
  bool item_stale(const QueueItem& item);
  // Pops queue items until a non-stale one is found; false when drained.
  bool pop_runnable(QueueItem* out);
  // The dispatcher front end: without a hook, pop_runnable; with a hook,
  // collect the same-timestamp runnable frontier, let the hook choose, and
  // re-queue the rest with their original keys.
  bool next_dispatch(QueueItem* out);

  EngineBackend backend_;
  std::size_t fiber_stack_bytes_;
  // The scheduler side of every fiber switch: the engine thread's own
  // context. Unused (but inert) under kThreads.
  Fiber sched_fiber_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatch_count_ = 0;
  CalendarQueue<QueueItem, QueueCmp> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t live_nondaemon_ = 0;
  std::size_t live_count_ = 0;
  // std::deque: references stay valid while slots are appended mid-run.
  std::deque<CallbackSlot> cb_slots_;
  std::vector<std::uint32_t> cb_free_;
  AllocStats alloc_stats_;
  Process* current_ = nullptr;
  BranchHook* hook_ = nullptr;
  FaultPlan* faults_ = nullptr;
  obs::Hub* obs_ = nullptr;
  std::binary_semaphore sched_sem_{0};  // kThreads handoff
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
  bool digest_enabled_ = false;
  ScheduleDigest digest_;
  std::uint64_t tiebreak_seed_ = 0;
};

}  // namespace ntbshmem::sim
