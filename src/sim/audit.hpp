// Schedule auditing for the discrete-event engine.
//
// The determinism contract (DESIGN.md §4d) says identical workloads produce
// identical schedules. A ScheduleDigest makes that claim checkable: when
// enabled on an Engine it folds every dispatched queue item — the tuple
// (virtual time, sequence number, dispatch kind) — into an FNV-1a hash, in
// dispatch order. Two runs of the same workload must produce bit-identical
// digests; a drift pinpoints the first divergence far more cheaply than
// diffing full traces.
//
// The companion debug mode, Engine::set_tiebreak_permutation(seed), perturbs
// the ordering of same-timestamp queue entries with a seeded bijection of
// the sequence number. Code that is order-sensitive only where the spec
// allows it (FIFO event wake-up, spawn-start order) will produce a
// *different but still deterministic* schedule — SHMEM-visible results
// (heap contents, barrier counts) must not change. A result change under
// permutation is accidental order sensitivity: exactly the bug class the
// auditor exists to catch.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ntbshmem::sim {

// What the engine dispatched: a process resume or an inline callback.
// Stale wake-ups and cancelled callbacks are skipped by the scheduler and
// deliberately not digested — they are bookkeeping artifacts, not schedule.
enum class DispatchKind : std::uint8_t {
  kProcess = 1,
  kCallback = 2,
};

// Stateless splitmix64 finalizer: a bijection on uint64, used both to derive
// tie-break permutation keys (unique seq -> unique key) and as a general
// seeded mixer. Distinct from the stream-advancing splitmix64 in fault.cpp.
std::uint64_t splitmix64_mix(std::uint64_t x);

// FNV-1a (64-bit) accumulator over the dispatched event stream.
class ScheduleDigest {
 public:
  void reset();
  void mix(Time t, std::uint64_t seq, DispatchKind kind);

  // Digest of everything mixed so far; stable across platforms.
  std::uint64_t value() const { return hash_; }
  // Number of dispatches folded in (a cheap first-line diff aid).
  std::uint64_t count() const { return count_; }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;

  std::uint64_t hash_ = kOffset;
  std::uint64_t count_ = 0;
};

}  // namespace ntbshmem::sim
