// Replay-based explicit-state exploration driver (DESIGN.md §4i).
//
// Fiber stacks cannot be checkpointed, so the explorer cannot fork the
// simulation at a branch point the way a classical model checker forks its
// state vector. Instead every explored path RE-RUNS the whole simulation
// from scratch (SPIN would call this "stateless" search with a visited-set
// assist): a ScriptedHook follows a prescribed choice prefix, then takes
// defaults (dispatch -> frontier index 0, fault -> skip), recording every
// branch point it passes. After the path completes, the Explorer expands
// unexplored siblings of branch points whose pre-decision state was first
// seen on this path, pushing one new prefix per sibling onto a DFS stack.
//
// State pruning is hash-based (Holzmann's bitstate caveat applies: an FNV
// collision silently merges two distinct states and their successors are
// missed — acceptable for the tiny configs mck targets, where the hash
// space towers over the state count). The hash is supplied by the caller
// (mck folds engine + transport + ScratchPad + heap state), keyed together
// with the branch kind and fan-out so "same state, different choice menu"
// stays distinct.
//
// Each path runs to completion even when it re-enters visited territory —
// mid-run backtracking is impossible without checkpoints. Exhaustiveness
// therefore means: every reachable (state, branch) pair within the limits
// had all its outgoing choices either taken or scheduled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/branch.hpp"

namespace ntbshmem::sim {

// One branch decision, as recorded and as replayed.
struct Choice {
  enum class Kind : std::uint8_t { kDispatch, kFault };
  Kind kind = Kind::kDispatch;
  std::uint32_t chosen = 0;   // dispatch: frontier index; fault: 1 = fire
  std::uint32_t options = 0;  // dispatch: frontier size; fault: 2
};

// "d1.d0.f1" — dispatch index 1, dispatch index 0, fault fired. The
// human-portable counterexample form printed by mck and accepted by
// --replay.
std::string format_script(const std::vector<Choice>& script);
// Inverse of format_script; throws std::invalid_argument on malformed
// input. Option counts are not encoded — replay rediscovers them.
std::vector<Choice> parse_script(const std::string& text);

// What the ScriptedHook captured at one branch point.
struct BranchRecord {
  Choice choice;
  std::uint64_t state_key = 0;  // fnv(state_hash, kind, options)
  bool fresh = false;           // first time this state_key was ever seen
};

// Follows a choice prefix, then defaults; records everything. One hook
// instance is reused across paths via begin_path().
class ScriptedHook : public BranchHook {
 public:
  using StateFn = std::function<std::uint64_t()>;

  // Arms the hook for one path. `state_fn` is called at every branch point
  // (before the decision) to hash the current simulation state; `visited`
  // is the cross-path visited set the freshness bit is computed against
  // (may be nullptr: every record reports fresh = false).
  void begin_path(std::vector<Choice> prefix, StateFn state_fn,
                  std::unordered_set<std::uint64_t>* visited);

  std::size_t choose_dispatch(std::size_t n) override;
  bool choose_fault(int site, const std::string& key) override;

  const std::vector<Choice>& prefix() const { return prefix_; }
  const std::vector<BranchRecord>& records() const { return records_; }
  // The choices actually executed on this path (prefix + defaults).
  std::vector<Choice> executed() const;

 private:
  std::uint32_t decide(Choice::Kind kind, std::uint32_t options);

  std::vector<Choice> prefix_;
  std::vector<BranchRecord> records_;
  StateFn state_fn_;
  std::unordered_set<std::uint64_t>* visited_ = nullptr;
};

// How one full path ended.
struct PathOutcome {
  enum class Status : std::uint8_t { kOk, kDeadlock, kViolation };
  Status status = Status::kOk;
  std::string detail;  // deadlock/violation diagnostic
};

struct Counterexample {
  std::vector<Choice> script;  // the executed choices reproducing it
  PathOutcome outcome;
};

struct ExploreLimits {
  std::uint64_t max_paths = 1u << 20;
  std::uint64_t max_states = 1u << 22;
  // Branch records per path beyond which siblings are no longer expanded
  // (the path itself still runs to completion).
  std::size_t max_depth = 4096;
  bool stop_at_first_violation = true;
};

struct ExploreReport {
  std::uint64_t paths = 0;          // full paths executed
  std::uint64_t states = 0;         // distinct (state, branch) keys seen
  std::uint64_t branch_points = 0;  // total branch decisions executed
  std::uint64_t violations = 0;
  bool truncated = false;  // a limit cut the search short of exhaustion
  std::vector<Counterexample> counterexamples;
};

// Bounded DFS over choice prefixes. The caller owns all simulation
// machinery: `run_path` must (1) build a FRESH simulation, (2) arm `hook`
// via begin_path with the given prefix and its own state function, (3)
// install the hook (engine + fault plan), (4) run to completion, and (5)
// report how the path ended. The Explorer never touches the simulation.
class Explorer {
 public:
  using PathFn =
      std::function<PathOutcome(ScriptedHook& hook, std::vector<Choice> prefix,
                                std::unordered_set<std::uint64_t>* visited)>;

  ExploreReport explore(const PathFn& run_path, const ExploreLimits& limits);
};

}  // namespace ntbshmem::sim
