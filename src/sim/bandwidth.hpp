// Fluid-flow shared-bandwidth resource.
//
// Models a link or bus of fixed capacity C (bytes/second) shared by
// concurrent transfers under max-min fair sharing: each active flow
// receives an equal share of C, except that a flow never exceeds its own
// rate cap (e.g. the DMA engine limit), in which case its leftover
// capacity is redistributed to the others (water-filling).
//
// Rates are recomputed whenever a flow arrives or completes, and the next
// completion is scheduled as an inline engine callback. This is the
// standard fluid approximation used in network simulators; it is exact for
// the piecewise-constant-rate case and fully deterministic here.
//
// The Fig. 8 "Ring vs Independent" contention dip emerges from this model:
// a host doing one TX and one RX stream shares its memory-bus
// BandwidthResource between the two flows.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event.hpp"

namespace ntbshmem::sim {

// Completion token for an asynchronous transfer. Wait on `event` until
// `done` becomes true (one transfer may need to join several resources,
// e.g. source bus + cable + destination bus).
struct Completion {
  explicit Completion(Engine& engine, const std::string& name)
      : event(engine, name) {}
  Event event;
  bool done = false;

  // Blocks the calling process until the transfer finishes.
  void wait() {
    while (!done) event.wait();
  }
};

class BandwidthResource {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  BandwidthResource(Engine& engine, std::string name, double capacity_Bps);
  BandwidthResource(const BandwidthResource&) = delete;
  BandwidthResource& operator=(const BandwidthResource&) = delete;

  // Blocks the calling process until `bytes` have drained through this
  // resource. `flow_cap_Bps` additionally caps this flow's own rate.
  void transfer(std::uint64_t bytes, double flow_cap_Bps = kUncapped);

  // Starts a transfer and returns immediately; the token's event fires on
  // completion. Usable from scheduler context as well as process context.
  std::shared_ptr<Completion> transfer_async(std::uint64_t bytes,
                                             double flow_cap_Bps = kUncapped);

  double capacity_Bps() const { return capacity_; }
  std::size_t active_flows() const { return flows_.size(); }
  const std::string& name() const { return name_; }

  // ---- Utilization accounting -----------------------------------------------
  // Total bytes ever admitted and the virtual time during which at least
  // one flow was active. utilization(window) = busy_time / window.
  std::uint64_t total_bytes() const { return total_bytes_; }
  Dur busy_time() const;
  double utilization(Dur window) const {
    return window > 0 ? sim::to_seconds(busy_time()) / sim::to_seconds(window)
                      : 0.0;
  }
  // Average throughput over `window` as a fraction of capacity.
  double load_factor(Dur window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(total_bytes_) /
           (capacity_ * sim::to_seconds(window));
  }

  // Instantaneous fair-share rate a new uncapped flow would get right now
  // (diagnostic; used by tests).
  double current_share_Bps() const;

 private:
  struct Flow {
    double remaining;  // bytes
    double cap;        // flow's own max rate (Bps)
    double rate = 0.0; // current assigned rate (Bps)
    std::shared_ptr<Completion> completion;
  };

  // Drains `dt` of progress into all flows, completes finished ones, then
  // recomputes fair-share rates and re-arms the completion timer.
  void update();
  void recompute_rates();
  void arm_timer();

  Engine& engine_;
  std::string name_;
  double capacity_;
  Time last_update_ = 0;
  std::list<Flow> flows_;
  CallbackHandle timer_;
  std::uint64_t total_bytes_ = 0;
  Dur busy_accum_ = 0;
  Time busy_since_ = 0;  // valid while flows_ nonempty
};

}  // namespace ntbshmem::sim
