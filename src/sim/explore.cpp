#include "sim/explore.hpp"

#include <sstream>
#include <stdexcept>

namespace ntbshmem::sim {

namespace {

std::uint64_t fnv_mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xffu)) * 0x100000001b3ull;
    v >>= 8;
  }
  return h;
}

std::uint64_t branch_key(std::uint64_t state_hash, Choice::Kind kind,
                         std::uint32_t options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv_mix_u64(h, state_hash);
  h = fnv_mix_u64(h, static_cast<std::uint64_t>(kind));
  h = fnv_mix_u64(h, options);
  return h;
}

}  // namespace

std::string format_script(const std::vector<Choice>& script) {
  if (script.empty()) return "-";
  std::ostringstream oss;
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (i != 0) oss << '.';
    oss << (script[i].kind == Choice::Kind::kDispatch ? 'd' : 'f')
        << script[i].chosen;
  }
  return oss.str();
}

std::vector<Choice> parse_script(const std::string& text) {
  std::vector<Choice> out;
  if (text.empty() || text == "-") return out;
  std::istringstream iss(text);
  std::string tok;
  while (std::getline(iss, tok, '.')) {
    if (tok.size() < 2 || (tok[0] != 'd' && tok[0] != 'f')) {
      throw std::invalid_argument("bad choice token '" + tok +
                                  "' (want d<N> or f<0|1>)");
    }
    Choice c;
    c.kind = tok[0] == 'd' ? Choice::Kind::kDispatch : Choice::Kind::kFault;
    std::size_t pos = 0;
    const unsigned long v = std::stoul(tok.substr(1), &pos);
    if (pos != tok.size() - 1) {
      throw std::invalid_argument("bad choice token '" + tok + "'");
    }
    if (c.kind == Choice::Kind::kFault && v > 1) {
      throw std::invalid_argument("fault choice must be f0 or f1, got " + tok);
    }
    c.chosen = static_cast<std::uint32_t>(v);
    c.options = c.kind == Choice::Kind::kFault ? 2 : 0;  // rediscovered
    out.push_back(c);
  }
  return out;
}

void ScriptedHook::begin_path(std::vector<Choice> prefix, StateFn state_fn,
                              std::unordered_set<std::uint64_t>* visited) {
  prefix_ = std::move(prefix);
  state_fn_ = std::move(state_fn);
  visited_ = visited;
  records_.clear();
}

std::uint32_t ScriptedHook::decide(Choice::Kind kind, std::uint32_t options) {
  const std::size_t pos = records_.size();
  BranchRecord rec;
  rec.choice.kind = kind;
  rec.choice.options = options;
  rec.state_key =
      branch_key(state_fn_ ? state_fn_() : 0, kind, options);
  rec.fresh = visited_ != nullptr && visited_->insert(rec.state_key).second;
  std::uint32_t chosen = 0;  // default: dispatch index 0 / fault skip
  if (pos < prefix_.size()) {
    const Choice& want = prefix_[pos];
    if (want.kind != kind || want.chosen >= options) {
      throw std::logic_error(
          "replay diverged at branch " + std::to_string(pos) + ": script has " +
          format_script({want}) + " but the simulation offered " +
          std::to_string(options) +
          (kind == Choice::Kind::kDispatch ? " dispatch options"
                                           : " fault options"));
    }
    chosen = want.chosen;
  }
  rec.choice.chosen = chosen;
  records_.push_back(rec);
  return chosen;
}

std::size_t ScriptedHook::choose_dispatch(std::size_t n) {
  return decide(Choice::Kind::kDispatch, static_cast<std::uint32_t>(n));
}

bool ScriptedHook::choose_fault(int /*site*/, const std::string& /*key*/) {
  return decide(Choice::Kind::kFault, 2) == 1;
}

std::vector<Choice> ScriptedHook::executed() const {
  std::vector<Choice> out;
  out.reserve(records_.size());
  for (const BranchRecord& r : records_) out.push_back(r.choice);
  return out;
}

ExploreReport Explorer::explore(const PathFn& run_path,
                                const ExploreLimits& limits) {
  ExploreReport report;
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::vector<Choice>> stack;
  stack.push_back({});  // the all-defaults path
  while (!stack.empty()) {
    if (report.paths >= limits.max_paths ||
        visited.size() >= limits.max_states) {
      report.truncated = true;
      break;
    }
    std::vector<Choice> prefix = std::move(stack.back());
    stack.pop_back();
    ScriptedHook hook;
    const PathOutcome outcome = run_path(hook, std::move(prefix), &visited);
    report.paths++;
    report.branch_points += hook.records().size();
    if (outcome.status != PathOutcome::Status::kOk) {
      report.violations++;
      report.counterexamples.push_back({hook.executed(), outcome});
      if (limits.stop_at_first_violation) break;
    }
    // Expand unexplored siblings — only at branch points whose state was
    // first discovered on this path (fresh), and only past the prescribed
    // prefix (the parent already owns the earlier positions).
    const std::vector<BranchRecord>& recs = hook.records();
    const std::vector<Choice> executed = hook.executed();
    for (std::size_t i = hook.prefix().size(); i < recs.size(); ++i) {
      if (i >= limits.max_depth) {
        report.truncated = true;
        break;
      }
      if (!recs[i].fresh) continue;
      for (std::uint32_t alt = 0; alt < recs[i].choice.options; ++alt) {
        if (alt == recs[i].choice.chosen) continue;
        std::vector<Choice> next(executed.begin(),
                                 executed.begin() +
                                     static_cast<std::ptrdiff_t>(i));
        Choice c = recs[i].choice;
        c.chosen = alt;
        next.push_back(c);
        stack.push_back(std::move(next));
      }
    }
  }
  report.states = visited.size();
  if (!stack.empty()) report.truncated = true;
  return report;
}

}  // namespace ntbshmem::sim
