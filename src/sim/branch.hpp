// Branch-point hook for explicit-state exploration (DESIGN.md §4i).
//
// The engine and the fault plan are deterministic: at every point where the
// simulation *could* go more than one way — several queue items runnable at
// the same timestamp, or an armed fault site that may or may not fire — they
// consult fixed policy (FIFO tie-break, seeded probability roll). A
// BranchHook replaces that policy with an external chooser, turning each
// such point into an explicit branch the model checker (tools/mck) can
// enumerate.
//
// Contract:
//   * choose_dispatch(n) is called only when n > 1 same-timestamp runnable
//     items exist; it returns the index (0..n-1, frontier order = the
//     default (tie, seq) order, so index 0 reproduces the unhooked
//     schedule) of the item to dispatch now. The remaining items are
//     re-queued with their original keys and re-offered at the next
//     dispatch.
//   * choose_fault(site, key) is called by FaultPlan in explore mode for
//     each eligible decision site; returning true fires the fault,
//     false skips it. Returning false everywhere reproduces a fault-free
//     run.
//
// Hooks must be deterministic functions of the call sequence (the explorer's
// ScriptedHook replays a choice prefix, then defaults) — the whole
// exploration scheme is replay-based because fiber stacks cannot be
// checkpointed.
#pragma once

#include <cstddef>
#include <string>

namespace ntbshmem::sim {

class BranchHook {
 public:
  virtual ~BranchHook() = default;

  // Pick which of `n` same-timestamp runnable queue items dispatches next.
  // Must return a value in [0, n). Called only for n > 1.
  virtual std::size_t choose_dispatch(std::size_t n) = 0;

  // Decide whether the fault at (site, key) fires. `site` is the integer
  // value of FaultPlan::Site (kept as int to avoid a header cycle).
  virtual bool choose_fault(int site, const std::string& key) = 0;
};

}  // namespace ntbshmem::sim
