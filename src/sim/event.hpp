// Condition-style event for simulated processes.
//
// A process blocks on an Event until another process (or an inline
// callback such as an interrupt-delivery timer) notifies it. Events carry
// no payload; the usual idiom is a predicate loop:
//
//   while (!mailbox.has_work()) mailbox.event.wait();
//
// Determinism: notify_all wakes waiters in FIFO order at the current
// virtual time, preserving the (time, sequence) total order of the engine.
#pragma once

#include <deque>
#include <string>

#include "sim/engine.hpp"

namespace ntbshmem::sim {

class Event {
 public:
  explicit Event(Engine& engine, std::string name = "event")
      : engine_(engine), name_(std::move(name)) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // Blocks the current process until notified.
  void wait();

  // Blocks until notified or until `timeout` elapses.
  // Returns true if notified, false on timeout.
  bool wait_for(Dur timeout);

  // Wakes all / the longest-waiting process. Callable from process or
  // scheduler (callback) context. No-op when nobody waits.
  void notify_all();
  void notify_one();

  std::size_t waiter_count() const { return waiters_.size(); }
  const std::string& name() const { return name_; }
  Engine& engine() const { return engine_; }

 private:
  void enqueue_current(Process* p);
  void remove(Process* p);

  Engine& engine_;
  std::string name_;
  std::deque<Process*> waiters_;
};

}  // namespace ntbshmem::sim
