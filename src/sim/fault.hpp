// Deterministic fault-injection plan for the simulated fabric.
//
// A FaultPlan is a seeded source of failure decisions that hardware models
// consult at well-defined sites: doorbell delivery (NtbPort::ring_doorbell),
// ScratchPad register writes, DMA descriptor programming, per-TLP link
// transfer (CRC-detected drop/corrupt -> replay penalty) and host interrupt
// delivery (delayed/coalesced vectors). Scheduled link flaps ride along in
// the spec and are applied by the runtime with Engine::call_at.
//
// Determinism: every (site, key) pair owns an independent splitmix64 stream
// derived from the plan seed and an FNV-1a hash of the key, so decisions at
// one site never perturb another site's sequence — adding traffic on link A
// cannot change which frame is dropped on link B. Same seed + same spec +
// same per-site call sequence => identical decisions (asserted by
// tests/sim/fault_test.cpp and replayed end-to-end by the fuzz harness).
//
// All probability rolls early-return without touching the stream when the
// configured probability is zero, so an attached all-zero plan is exactly
// free: no waits, no state, bit-identical virtual times (the golden-time
// tests run with a zero plan attached).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace ntbshmem::sim {

class BranchHook;
class TraceRecorder;

// One scheduled cable outage: link index `link` goes down at `down_at` and
// retrains at `up_at` (virtual times).
struct LinkFlap {
  int link = 0;
  Time down_at = 0;
  Time up_at = 0;
};

// Injection probabilities and magnitudes. All probabilities are per decision
// (per doorbell ring, per register write, per DMA descriptor, per transfer,
// per interrupt delivery); zero disables the site entirely.
struct FaultSpec {
  double doorbell_drop = 0.0;       // lost doorbell ring (no latch, no IRQ)
  double scratchpad_corrupt = 0.0;  // flipped bits in a ScratchPad write
  double dma_error = 0.0;           // DMA descriptor rejected (error status)
  double tlp_drop = 0.0;            // per-TLP loss -> DLLP replay penalty
  double tlp_corrupt = 0.0;         // per-TLP LCRC error -> replay penalty
  double irq_delay = 0.0;           // vector delayed (coalesced) by irq_delay_ns

  Dur irq_delay_ns = 200 * kUs;  // extra delivery latency when irq_delay fires
  Dur tlp_replay_ns = 30 * kUs;  // one link-layer replay round per TLP event

  // Doorbell bits eligible for drop injection. The runtime clears the
  // barrier-circulation bits: barrier doorbells are modelled as a reliable
  // control path (they have no retransmit timer; see DESIGN.md §4b).
  std::uint16_t doorbell_drop_mask = 0xffff;

  // Scheduled outages applied via Engine::call_at at runtime construction.
  std::vector<LinkFlap> link_flaps;

  bool any() const {
    return doorbell_drop > 0.0 || scratchpad_corrupt > 0.0 || dma_error > 0.0 ||
           tlp_drop > 0.0 || tlp_corrupt > 0.0 || irq_delay > 0.0 ||
           !link_flaps.empty();
  }
};

// Counters of injected events (what actually fired, not what was rolled).
struct FaultStats {
  std::uint64_t doorbells_dropped = 0;
  std::uint64_t scratchpads_corrupted = 0;
  std::uint64_t dma_errors = 0;
  std::uint64_t tlp_replays = 0;
  std::uint64_t irq_delays = 0;

  std::uint64_t total() const {
    return doorbells_dropped + scratchpads_corrupted + dma_errors +
           tlp_replays + irq_delays;
  }
};

class FaultPlan {
 public:
  enum class Site : std::uint8_t {
    kDoorbell = 1,
    kScratchpad = 2,
    kDma = 3,
    kTlp = 4,
    kIrq = 5,
  };

  explicit FaultPlan(std::uint64_t seed, FaultSpec spec = {});
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint64_t seed() const { return seed_; }
  const FaultSpec& spec() const { return spec_; }
  FaultSpec& spec() { return spec_; }

  // Injected events are recorded under the "fault" category when a recorder
  // is bound (a disabled recorder costs nothing).
  void bind_trace(TraceRecorder* trace) { trace_ = trace; }

  // Arms `count` guaranteed injections at (site, key) that fire on the next
  // `count` decisions there regardless of the configured probability —
  // the targeted-test hook ("drop exactly the 3rd doorbell on host0.right").
  // Keys: doorbell -> "<port>:<bit>"; scratchpad/dma -> "<port>";
  // tlp -> "<wire>" (e.g. "link0-1.a2b"); irq -> "<controller>".
  void arm_one_shot(Site site, const std::string& key, int count = 1);

  // ---- Exploration mode (sim/branch.hpp, tools/mck) -------------------------
  // Routes every eligible decision through `hook` instead of the seeded
  // probability roll / one-shot ladder, turning each fault site into an
  // explicit branch point. `site_mask` has bit (1u << Site) set for each
  // site eligible to branch (ineligible sites never fire and never consult
  // the hook); `fire_budget` bounds the number of firings per run — once
  // exhausted, remaining decisions skip without consulting the hook, which
  // keeps the explored tree finite. The doorbell drop mask still applies
  // *before* the hook, so masked bits (the barrier-circulation bits the
  // runtime clears) never become branch points. nullptr detaches and
  // restores the seeded behavior.
  void set_branch_hook(BranchHook* hook, std::uint32_t site_mask,
                       int fire_budget);
  BranchHook* branch_hook() const { return hook_; }
  // Firings consumed from the budget on the current run (reset by
  // set_branch_hook).
  int fires_used() const { return fires_used_; }

  // ---- Decision sites (called by the hardware models) -----------------------
  // True => this doorbell ring is silently lost.
  bool drop_doorbell(Time now, const std::string& port, int bit);
  // True => XOR `*xor_mask` (never zero) into the written register value.
  bool corrupt_scratchpad(Time now, const std::string& port, int reg,
                          std::uint32_t* xor_mask);
  // True => the DMA engine rejects the descriptor (error status, no data).
  bool dma_descriptor_error(Time now, const std::string& port);
  // Extra link-occupancy delay for a `bytes`-sized transfer whose TLPs are
  // `max_payload` bytes each: each of drop/corrupt fires with probability
  // 1-(1-p)^n_tlps and adds one tlp_replay_ns replay round. Zero when
  // nothing fires (the common case; callers skip the wait entirely).
  Dur tlp_replay_penalty(Time now, const std::string& wire, std::uint64_t bytes,
                         std::uint32_t max_payload);
  // Extra delivery latency for one interrupt vector (0 = on time).
  Dur irq_delivery_delay(Time now, const std::string& controller, int vector);

  const FaultStats& stats() const { return stats_; }

 private:
  // Uniform [0,1) draw from the (site, key) stream; prob <= 0 short-circuits
  // to false without creating or advancing the stream.
  bool roll(Site site, const std::string& key, double prob);
  // Explore-mode decision for (site, key): false when the site is masked
  // out or the fire budget is spent; otherwise whatever the hook chooses
  // (a firing consumes one budget unit).
  bool explore_decision(Site site, const std::string& key);
  bool take_one_shot(Site site, const std::string& key);
  std::uint64_t& stream(Site site, const std::string& key);
  std::uint32_t draw_mask(Site site, const std::string& key);
  void note(Time now, const std::string& message);

  std::uint64_t seed_;
  FaultSpec spec_;
  TraceRecorder* trace_ = nullptr;
  BranchHook* hook_ = nullptr;  // explore mode when non-null
  std::uint32_t hook_site_mask_ = 0;
  int fire_budget_ = 0;
  int fires_used_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> streams_;
  std::unordered_map<std::uint64_t, int> one_shots_;
  FaultStats stats_;
};

}  // namespace ntbshmem::sim
