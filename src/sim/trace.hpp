// Lightweight trace recorder — compatibility shim over the obs layer.
//
// Components append timestamped (category, message) records when a
// TraceRecorder is attached; tests use it to assert protocol ordering
// (e.g. "barrier_end never precedes barrier_start on any host") and
// debugging sessions dump it. Recording is O(1) per record and disabled by
// default (null recorder).
//
// New instrumentation should use obs::Tracer (typed spans, interned ids,
// per-track buffers) directly; this class remains for the existing
// string-assertion tests and keeps two upgrades:
//   * a per-category index, so count() is O(1) and filter() is O(matches)
//     instead of both re-scanning every record per assertion, and
//   * an optional mirror into an obs::Tracer, so legacy records (notably
//     fault injections) show up on the exported Perfetto timeline as
//     instant events on per-category "trace" tracks.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace ntbshmem::sim {

struct TraceRecord {
  Time t;
  std::string category;  // e.g. "doorbell", "dma", "barrier"
  std::string message;
};

class TraceRecorder {
 public:
  void record(Time t, std::string category, std::string message) {
    if (!enabled_) return;
    if (mirror_ != nullptr && mirror_->enabled()) {
      mirror_record(t, category, message);
    }
    by_category_[category].push_back(records_.size());
    records_.push_back(TraceRecord{t, std::move(category), std::move(message)});
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void clear() {
    records_.clear();
    by_category_.clear();
  }

  const std::vector<TraceRecord>& records() const { return records_; }

  // All records in a category, in time order (records are appended in
  // nondecreasing time order by construction). O(matches) via the index.
  std::vector<TraceRecord> filter(const std::string& category) const {
    std::vector<TraceRecord> out;
    const auto it = by_category_.find(category);
    if (it == by_category_.end()) return out;
    out.reserve(it->second.size());
    for (const std::size_t idx : it->second) out.push_back(records_[idx]);
    return out;
  }

  // Number of records in a category, O(1) via the index.
  std::size_t count(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second.size();
  }

  // Tees every future record into `tracer` (nullptr detaches) as an instant
  // event on track ("trace", category) with the message as its detail
  // payload. Only records while the tracer itself is enabled.
  void bind_mirror(obs::Tracer* tracer) { mirror_ = tracer; }

 private:
  void mirror_record(Time t, const std::string& category,
                     const std::string& message) {
    // Rare-event path (trace recording is test/debug only): interning per
    // record is fine, and category names are bounded.
    const obs::TrackId track = mirror_->track("trace", category);
    mirror_->instant_detail(track, mirror_->category(category),
                            mirror_->event(category), t, message);
  }

  bool enabled_ = false;
  std::vector<TraceRecord> records_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_category_;
  obs::Tracer* mirror_ = nullptr;
};

}  // namespace ntbshmem::sim
