// Lightweight trace recorder.
//
// Components append timestamped records when a TraceRecorder is attached;
// tests use it to assert protocol ordering (e.g. "barrier_end never
// precedes barrier_start on any host") and debugging sessions dump it.
// Recording is O(1) per record and disabled by default (null recorder).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ntbshmem::sim {

struct TraceRecord {
  Time t;
  std::string category;  // e.g. "doorbell", "dma", "barrier"
  std::string message;
};

class TraceRecorder {
 public:
  void record(Time t, std::string category, std::string message) {
    if (!enabled_) return;
    records_.push_back(TraceRecord{t, std::move(category), std::move(message)});
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  void clear() { records_.clear(); }
  const std::vector<TraceRecord>& records() const { return records_; }

  // All records in a category, in time order (records are appended in
  // nondecreasing time order by construction).
  std::vector<TraceRecord> filter(const std::string& category) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
      if (r.category == category) out.push_back(r);
    }
    return out;
  }

  // Number of records in a category, without filter()'s copies — for
  // count-only assertions over large traces.
  std::size_t count(const std::string& category) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category) ++n;
    }
    return n;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace ntbshmem::sim
