// Stackful fibers for the discrete-event engine.
//
// A Fiber is a user-space execution context: its own guard-paged stack plus
// saved registers. The engine backs every simulated Process with one, so a
// process step costs a user-space context swap instead of the two
// kernel-mediated semaphore round-trips the thread-backed engine paid.
// There is deliberately no scheduling here — the engine decides who runs;
// Fiber only implements the mechanics.
//
// Switch mechanics: on x86-64 the hot switch is a hand-rolled swap of the
// System-V callee-saved registers plus the FP control words (~30 ns).
// glibc's swapcontext would also save/restore the signal mask, a
// rt_sigprocmask(2) round-trip per switch that dominates a calendar-queue
// dispatch (~0.3 us each way — measured, it was the whole hot path). The
// simulation never touches per-fiber signal masks, so nothing is lost.
// Other architectures fall back to ucontext swapcontext, correct but slow.
//
// Stacks are mmap'd with a PROT_NONE guard page at the low (growth) end,
// so runaway recursion faults immediately instead of corrupting a
// neighbouring fiber's stack. The usable size defaults to 256 KiB and is
// tunable via NTBSHMEM_FIBER_STACK_KiB (read once per Engine).
//
// Sanitizer integration: under -fsanitize=thread every switch is announced
// with __tsan_switch_to_fiber so TSan tracks the fiber's happens-before
// state instead of flagging the stack swap; under -fsanitize=address the
// __sanitizer_{start,finish}_switch_fiber pair keeps ASan's fake-stack and
// stack-bounds bookkeeping coherent across swaps. Both compile to nothing
// in plain builds.
#pragma once

#include <cstddef>

#if defined(__x86_64__) && defined(__GNUC__)
#define NTBSHMEM_FIBER_FAST_SWITCH 1
#else
#include <ucontext.h>
#endif

namespace ntbshmem::sim {

class Fiber {
 public:
  // Plain function pointer so makecontext needs no argument marshalling;
  // the caller smuggles context through thread-local state (the engine uses
  // its existing current-process binding).
  using Entry = void (*)();

  // Adopts the calling OS thread's native context as a fiber (the
  // scheduler side of every switch). Allocates no stack.
  Fiber();

  // Creates a suspended fiber that runs `entry` on its own guard-paged
  // stack of `stack_bytes` usable bytes (rounded up to whole pages) when
  // first switched to. `entry` must never return: it must end by switching
  // away after set_exiting().
  Fiber(Entry entry, std::size_t stack_bytes);

  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Transfers control from `from` (which must be the running fiber) to
  // `to`. Returns when another switch_to() targets `from` again.
  static void switch_to(Fiber& from, Fiber& to);

  // Must be the first statement of an Entry function: completes the
  // sanitizer half of the switch that entered the fiber.
  static void on_entry(Fiber& self);

  // Marks this fiber as never running again. The next switch_to() away
  // from it releases its ASan fake-stack state.
  void set_exiting() { exiting_ = true; }

  // Frees the stack mapping and TSan fiber handle of a fiber that has
  // switched away for the last time. Idempotent; must not be called on the
  // running fiber. Also invoked by the destructor.
  void release_dead();

  std::size_t stack_bytes() const { return usable_size_; }

  // Usable stack size for new fibers: NTBSHMEM_FIBER_STACK_KiB (clamped to
  // >= 16 KiB) or 256 KiB when unset/unparsable.
  static std::size_t default_stack_bytes();

 private:
#if defined(NTBSHMEM_FIBER_FAST_SWITCH)
  // Saved stack pointer; the callee-saved registers, FP control words and
  // resume address live on the fiber's own stack (see fiber.cpp layout).
  void* sp_ = nullptr;
#else
  ucontext_t ctx_{};
#endif
  void* map_base_ = nullptr;   // mmap base; guard page at the low end
  std::size_t map_size_ = 0;   // guard + usable
  void* stack_lo_ = nullptr;   // usable stack bottom (above the guard)
  std::size_t usable_size_ = 0;
  void* tsan_fiber_ = nullptr;
  void* asan_fake_stack_ = nullptr;
  bool exiting_ = false;
  bool thread_fiber_ = false;
};

}  // namespace ntbshmem::sim
